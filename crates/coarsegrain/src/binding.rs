//! Binding report: validation of a schedule against the datapath and the
//! derived hardware statistics (CGC utilisation, chain histogram, register
//! pressure on the register bank).
//!
//! §3.3: "the steps of the mapping process are: (a) scheduling of DFG
//! operations, and (b) binding with the CGCs." The scheduler already picks
//! concrete sites, so binding here is the verification + reporting step —
//! exactly what a downstream RTL generator would consume.

use crate::datapath::CgcDatapath;
use crate::scheduler::{Placement, Schedule, Site};
use crate::CoarseGrainError;
use amdrel_cdfg::{Dfg, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Statistics of a bound schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BindingReport {
    /// Schedule length in `T_CGC` cycles.
    pub length: u64,
    /// Operations executed on CGC nodes.
    pub cgc_ops: u64,
    /// Operations executed on memory ports.
    pub mem_ops: u64,
    /// Fraction of CGC node-cycles actually used (`0.0..=1.0`).
    pub cgc_utilization: f64,
    /// Histogram of chain lengths (index 0 = chains of length 1, …).
    pub chain_histogram: Vec<u64>,
    /// Peak number of values alive across a cycle boundary (register-bank
    /// pressure). Includes graph live-ins held for later consumers.
    pub peak_registers: u64,
}

impl BindingReport {
    /// Whether the peak register demand fits the datapath's register bank.
    pub fn fits_register_bank(&self, datapath: &CgcDatapath) -> bool {
        self.peak_registers <= u64::from(datapath.register_bank)
    }
}

/// Validate `schedule` against `datapath` and derive the binding report.
///
/// Checks per-cycle slot/port capacity, chain well-formedness (each
/// occupied `(cgc, col)` must hold rows `0..k` of a dependency chain) and
/// precedence.
///
/// # Errors
///
/// [`CoarseGrainError::InvalidBinding`] describing the first violation.
pub fn bind(
    dfg: &Dfg,
    schedule: &Schedule,
    datapath: &CgcDatapath,
) -> Result<BindingReport, CoarseGrainError> {
    let mut cgc_ops = 0u64;
    let mut mem_ops = 0u64;
    // (cycle, cgc, col) → rows used, with the node at each row.
    let mut columns: HashMap<(u64, u32, u32), Vec<(u32, NodeId)>> = HashMap::new();
    let mut ports: HashMap<(u64, u32), NodeId> = HashMap::new();

    for n in dfg.node_ids() {
        let Some(Placement { cycle, site }) = schedule.placement(n) else {
            if dfg.node(n).kind.is_schedulable() {
                return Err(CoarseGrainError::InvalidBinding {
                    reason: format!("schedulable node {n} has no placement"),
                });
            }
            continue;
        };
        match site {
            Site::CgcNode { cgc, col, row } => {
                let geometry = datapath.cgcs.get(cgc as usize).ok_or_else(|| {
                    CoarseGrainError::InvalidBinding {
                        reason: format!("node {n} bound to nonexistent CGC {cgc}"),
                    }
                })?;
                if col >= geometry.cols || row >= geometry.rows {
                    return Err(CoarseGrainError::InvalidBinding {
                        reason: format!("node {n} bound to ({cgc},{col},{row}) outside {geometry}"),
                    });
                }
                columns.entry((cycle, cgc, col)).or_default().push((row, n));
                cgc_ops += 1;
            }
            Site::MemPort { port } => {
                if port >= datapath.mem_ports {
                    return Err(CoarseGrainError::InvalidBinding {
                        reason: format!("node {n} bound to nonexistent port {port}"),
                    });
                }
                if let Some(prev) = ports.insert((cycle, port), n) {
                    return Err(CoarseGrainError::InvalidBinding {
                        reason: format!(
                            "port {port} double-booked at cycle {cycle} by {prev} and {n}"
                        ),
                    });
                }
                mem_ops += 1;
            }
        }
    }

    // No CGC node double-booked.
    for ((cycle, cgc, col), rows) in &columns {
        let mut seen = std::collections::HashSet::new();
        for &(row, n) in rows {
            if !seen.insert(row) {
                return Err(CoarseGrainError::InvalidBinding {
                    reason: format!(
                        "cycle {cycle} CGC {cgc} col {col} row {row} double-booked (by {n} among others)"
                    ),
                });
            }
        }
    }

    // Precedence: a producer must finish in an earlier cycle, or — the
    // steering-logic chaining case — sit directly above its consumer in
    // the same column of the same CGC in the same cycle.
    for n in dfg.node_ids() {
        let Some(pn) = schedule.placement(n) else {
            continue;
        };
        for &p in dfg.preds(n) {
            let Some(pp) = schedule.placement(p) else {
                continue;
            };
            if pp.cycle < pn.cycle {
                continue;
            }
            if pp.cycle > pn.cycle {
                return Err(CoarseGrainError::InvalidBinding {
                    reason: format!("{n} scheduled before its producer {p}"),
                });
            }
            let chained = match (pp.site, pn.site) {
                (
                    Site::CgcNode {
                        cgc: c1,
                        col: k1,
                        row: r1,
                    },
                    Site::CgcNode {
                        cgc: c2,
                        col: k2,
                        row: r2,
                    },
                ) => c1 == c2 && k1 == k2 && r1 + 1 == r2,
                _ => false,
            };
            if !chained {
                return Err(CoarseGrainError::InvalidBinding {
                    reason: format!(
                        "{n} consumes {p} in the same cycle without being chained directly below it"
                    ),
                });
            }
        }
    }

    // Chain histogram: maximal runs of adjacent rows where each node
    // consumes the one above it.
    let mut chain_histogram: Vec<u64> = Vec::new();
    for (_, mut rows) in columns {
        rows.sort_by_key(|&(r, _)| r);
        let mut run = 0usize;
        let mut prev: Option<(u32, NodeId)> = None;
        let record = |len: usize, hist: &mut Vec<u64>| {
            if len == 0 {
                return;
            }
            if hist.len() < len {
                hist.resize(len, 0);
            }
            hist[len - 1] += 1;
        };
        for &(row, n) in &rows {
            let chained_onto_prev =
                prev.is_some_and(|(pr, pn)| pr + 1 == row && dfg.preds(n).contains(&pn));
            if chained_onto_prev {
                run += 1;
            } else {
                record(run, &mut chain_histogram);
                run = 1;
            }
            prev = Some((row, n));
        }
        record(run, &mut chain_histogram);
    }

    // Register pressure: a value is alive from its producing cycle to the
    // last cycle that consumes it; it crosses boundary b (between cycle b
    // and b+1) if produced ≤ b and consumed > b. Same-cycle (chained)
    // consumption needs no register. Boundary live-ins are alive from
    // cycle 0 to their last consumer.
    let length = schedule.length();
    let mut peak = 0u64;
    if length > 1 {
        let produced_at = |n: NodeId| schedule.placement(n).map(|p| p.cycle);
        let mut crossings = vec![0u64; (length - 1) as usize];
        for n in dfg.node_ids() {
            let prod = match produced_at(n) {
                Some(c) => Some(c),
                None if !dfg.node(n).kind.is_schedulable() && !dfg.succs(n).is_empty() => {
                    Some(0) // live-in/const held in the bank from the start
                }
                None => None,
            };
            let Some(prod) = prod else { continue };
            let last_use = dfg
                .succs(n)
                .iter()
                .filter_map(|&s| produced_at(s))
                .max()
                .unwrap_or(prod);
            for b in prod..last_use {
                if (b as usize) < crossings.len() {
                    crossings[b as usize] += 1;
                }
            }
        }
        peak = crossings.into_iter().max().unwrap_or(0);
    }

    let slots = u64::from(datapath.compute_slots());
    let denom = slots.saturating_mul(length).max(1);
    Ok(BindingReport {
        length,
        cgc_ops,
        mem_ops,
        cgc_utilization: cgc_ops as f64 / denom as f64,
        chain_histogram,
        peak_registers: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{schedule_dfg, SchedulerConfig};
    use amdrel_cdfg::synth::{random_dfg, SynthConfig};
    use amdrel_cdfg::OpKind;

    fn bound(dfg: &Dfg) -> BindingReport {
        let dp = CgcDatapath::two_2x2();
        let s = schedule_dfg(dfg, &dp, &SchedulerConfig::default()).unwrap();
        bind(dfg, &s, &dp).unwrap()
    }

    #[test]
    fn mac_report() {
        let mut dfg = Dfg::new("mac");
        let m = dfg.add_op(OpKind::Mul, 16);
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(m, a).unwrap();
        let r = bound(&dfg);
        assert_eq!(r.length, 1);
        assert_eq!(r.cgc_ops, 2);
        assert_eq!(r.chain_histogram, vec![0, 1]); // one chain of length 2
        assert_eq!(r.peak_registers, 0); // consumed in-cycle
    }

    #[test]
    fn utilization_bounded() {
        for seed in 0..10 {
            let dfg = random_dfg(seed, &SynthConfig::default());
            let r = bound(&dfg);
            assert!(r.cgc_utilization > 0.0 && r.cgc_utilization <= 1.0);
        }
    }

    #[test]
    fn register_pressure_counts_cross_cycle_values() {
        // 8 independent adds (cycle 0..1 on 8 slots? no: 8 adds fill one
        // cycle exactly on two 2x2) all feeding one final add in cycle 1:
        // 8 values cross the boundary... but fan-in is limited to the
        // add's 2 preds. Build 2 producers → 1 consumer two cycles later.
        let mut dfg = Dfg::new("regs");
        let p1 = dfg.add_op(OpKind::Add, 32);
        let p2 = dfg.add_op(OpKind::Add, 32);
        // A long chain to stretch the schedule.
        let mut prev = dfg.add_op(OpKind::Add, 32);
        for _ in 0..6 {
            let n = dfg.add_op(OpKind::Add, 32);
            dfg.add_edge(prev, n).unwrap();
            prev = n;
        }
        let sink = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(p1, sink).unwrap();
        dfg.add_edge(p2, sink).unwrap();
        dfg.add_edge(prev, sink).unwrap();
        let r = bound(&dfg);
        assert!(
            r.peak_registers >= 2,
            "p1/p2 must be banked, got {}",
            r.peak_registers
        );
    }

    #[test]
    fn all_random_schedules_bind_cleanly() {
        let dp = CgcDatapath::three_2x2();
        for seed in 0..30 {
            let dfg = random_dfg(
                seed,
                &SynthConfig {
                    nodes: 60,
                    ..SynthConfig::default()
                },
            );
            let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
            let r = bind(&dfg, &s, &dp).unwrap();
            assert_eq!(r.cgc_ops + r.mem_ops, dfg.op_count() as u64);
        }
    }

    #[test]
    fn corrupted_schedule_detected() {
        // Hand-build an out-of-range binding through serde round-trip
        // tampering: simplest is to check the nonexistent-CGC path via a
        // schedule from a larger datapath validated against a smaller one.
        let mut dfg = Dfg::new("w");
        for _ in 0..12 {
            dfg.add_op(OpKind::Add, 32);
        }
        let big = CgcDatapath::three_2x2();
        let small = CgcDatapath::new(vec![crate::CgcGeometry::TWO_BY_TWO]);
        let s = schedule_dfg(&dfg, &big, &SchedulerConfig::default()).unwrap();
        // 12 ops on 12 slots: uses CGC 2, which 'small' lacks.
        assert!(matches!(
            bind(&dfg, &s, &small),
            Err(CoarseGrainError::InvalidBinding { .. })
        ));
    }
}
