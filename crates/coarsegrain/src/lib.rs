//! # amdrel-coarsegrain — the CGC coarse-grain datapath
//!
//! Models the high-performance coarse-grain datapath of the authors'
//! FPL'04 paper (reference \[6\] of the DATE paper) that the partitioning
//! methodology maps kernels onto:
//!
//! * [`CgcDatapath`] / [`CgcGeometry`] — k CGCs of n×m mult+ALU nodes,
//!   shared-memory ports, register bank;
//! * [`schedule_dfg`] — the chaining-aware list scheduler (§3.3 step (a));
//! * [`bind`] — binding verification + utilisation/register statistics
//!   (§3.3 step (b));
//! * [`CdfgCoarseGrainMapping`] — per-block mapping of a whole CDFG and
//!   eq. (3)'s `t_coarse`.
//!
//! All coarse-grain times are in `T_CGC` cycles; the partitioning engine
//! converts to FPGA cycles with the platform's clock ratio
//! (`T_FPGA = 3 × T_CGC` in the paper's experiments).
//!
//! # Examples
//!
//! ```
//! use amdrel_cdfg::{Dfg, OpKind};
//! use amdrel_coarsegrain::{map_dfg, CgcDatapath, SchedulerConfig};
//!
//! # fn main() -> Result<(), amdrel_coarsegrain::CoarseGrainError> {
//! // A multiply-accumulate: mul → add chains through one CGC column.
//! let mut dfg = Dfg::new("mac");
//! let m = dfg.add_op(OpKind::Mul, 16);
//! let a = dfg.add_op(OpKind::Add, 32);
//! dfg.add_edge(m, a)?;
//!
//! let mapping = map_dfg(&dfg, &CgcDatapath::two_2x2(), &SchedulerConfig::default())?;
//! assert_eq!(mapping.cycles_per_exec(), 1);
//! assert_eq!(mapping.report.chain_histogram, vec![0, 1]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binding;
mod datapath;
pub mod gantt;
mod mapping;
mod scheduler;

pub use binding::{bind, BindingReport};
pub use datapath::{CgcDatapath, CgcGeometry};
pub use gantt::gantt;
pub use mapping::{map_dfg, CdfgCoarseGrainMapping, CoarseGrainMapping};
pub use scheduler::{
    length_lower_bound, schedule_dfg, Placement, Priority, Schedule, SchedulerConfig, Site,
};

use amdrel_cdfg::GraphError;
use std::fmt;

/// Errors from coarse-grain scheduling and binding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoarseGrainError {
    /// Memory operations exist but the datapath has no shared-memory
    /// ports.
    NoMemPorts,
    /// The scheduler made no progress in a cycle (malformed input).
    SchedulerStalled {
        /// The cycle at which no operation could be placed.
        cycle: u64,
    },
    /// A schedule failed binding validation.
    InvalidBinding {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The underlying DFG was malformed.
    Graph(GraphError),
}

impl fmt::Display for CoarseGrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoarseGrainError::NoMemPorts => {
                f.write_str("DFG contains memory operations but the datapath has no memory ports")
            }
            CoarseGrainError::SchedulerStalled { cycle } => {
                write!(f, "scheduler stalled at cycle {cycle}")
            }
            CoarseGrainError::InvalidBinding { reason } => {
                write!(f, "invalid binding: {reason}")
            }
            CoarseGrainError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for CoarseGrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoarseGrainError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoarseGrainError {
    fn from(e: GraphError) -> Self {
        CoarseGrainError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_well_behaved() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<CoarseGrainError>();
        assert!(CoarseGrainError::NoMemPorts.to_string().contains("memory"));
    }
}
