//! Coarse-grain mapping of whole CDFGs and the `t_coarse` of eq. (3).
//!
//! "For handling CDFG, the mapping procedure is iterated through the DFGs
//! comprising the CDFG of an application" (§3.3). Each basic block gets an
//! independent schedule + binding; per-block latency is the schedule
//! length in `T_CGC` cycles.

use crate::binding::{bind, BindingReport};
use crate::datapath::CgcDatapath;
use crate::scheduler::{schedule_dfg, Schedule, SchedulerConfig};
use crate::CoarseGrainError;
use amdrel_cdfg::Cdfg;
use serde::{Deserialize, Serialize};

/// The coarse-grain mapping of one basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseGrainMapping {
    /// The schedule (placements per node).
    pub schedule: Schedule,
    /// The verified binding report.
    pub report: BindingReport,
}

impl CoarseGrainMapping {
    /// `t_to_coarse(BB)`: CGC cycles for one execution of the block.
    pub fn cycles_per_exec(&self) -> u64 {
        self.schedule.length()
    }
}

/// Map one DFG (schedule + bind).
///
/// # Errors
///
/// Propagates scheduler and binding failures.
pub fn map_dfg(
    dfg: &amdrel_cdfg::Dfg,
    datapath: &CgcDatapath,
    config: &SchedulerConfig,
) -> Result<CoarseGrainMapping, CoarseGrainError> {
    let schedule = schedule_dfg(dfg, datapath, config)?;
    let report = bind(dfg, &schedule, datapath)?;
    Ok(CoarseGrainMapping { schedule, report })
}

/// Coarse-grain mappings for every block of a CDFG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfgCoarseGrainMapping {
    /// Per-block mappings, indexed by block id.
    pub blocks: Vec<CoarseGrainMapping>,
}

impl CdfgCoarseGrainMapping {
    /// Map every block of `cdfg`.
    ///
    /// # Errors
    ///
    /// The first block that fails to schedule or bind.
    pub fn map(
        cdfg: &Cdfg,
        datapath: &CgcDatapath,
        config: &SchedulerConfig,
    ) -> Result<Self, CoarseGrainError> {
        let blocks = cdfg
            .iter()
            .map(|(_, bb)| map_dfg(&bb.dfg, datapath, config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CdfgCoarseGrainMapping { blocks })
    }

    /// Per-block cost vector: `t_to_coarse(BB_i) × Iter(BB_i)` in CGC
    /// cycles for every block. [`Self::t_coarse`] over any subset equals
    /// the sum of the corresponding entries, so callers (the partitioning
    /// engine) can maintain running sums and update them in O(1) per
    /// kernel move instead of rescanning all blocks.
    ///
    /// # Panics
    ///
    /// Panics if `exec_freq` is shorter than the block list.
    pub fn block_costs(&self, exec_freq: &[u64]) -> Vec<u64> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, m)| m.cycles_per_exec().saturating_mul(exec_freq[i]))
            .collect()
    }

    /// eq. (3): `t_coarse = Σ_i t_to_coarse(BB_i) × Iter(BB_i)` in CGC
    /// cycles, over the subset of blocks selected by `on_coarse`.
    ///
    /// # Panics
    ///
    /// Panics if `exec_freq` is shorter than the block list.
    pub fn t_coarse(&self, exec_freq: &[u64], mut on_coarse: impl FnMut(usize) -> bool) -> u64 {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| on_coarse(*i))
            .map(|(i, m)| m.cycles_per_exec().saturating_mul(exec_freq[i]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdrel_cdfg::{BasicBlock, Dfg, OpKind};

    fn two_block_cdfg() -> Cdfg {
        let mut cdfg = Cdfg::new("app");
        let mut d0 = Dfg::new("b0");
        let m = d0.add_op(OpKind::Mul, 16);
        let a = d0.add_op(OpKind::Add, 32);
        d0.add_edge(m, a).unwrap();
        let mut d1 = Dfg::new("b1");
        for _ in 0..16 {
            d1.add_op(OpKind::Add, 32);
        }
        let b0 = cdfg.add_block(BasicBlock::from_dfg("b0", d0));
        let b1 = cdfg.add_block(BasicBlock::from_dfg("b1", d1));
        cdfg.add_edge(b0, b1).unwrap();
        cdfg
    }

    #[test]
    fn per_block_mapping_and_eq3() {
        let cdfg = two_block_cdfg();
        let dp = CgcDatapath::two_2x2();
        let map = CdfgCoarseGrainMapping::map(&cdfg, &dp, &SchedulerConfig::default()).unwrap();
        assert_eq!(map.blocks[0].cycles_per_exec(), 1); // chained MAC
        assert_eq!(map.blocks[1].cycles_per_exec(), 2); // 16 adds / 8 slots
        let t = map.t_coarse(&[100, 10], |_| true);
        assert_eq!(t, 100 + 20);
        let t_b1_only = map.t_coarse(&[100, 10], |i| i == 1);
        assert_eq!(t_b1_only, 20);
    }

    #[test]
    fn block_costs_agree_with_t_coarse() {
        let cdfg = two_block_cdfg();
        let dp = CgcDatapath::two_2x2();
        let map = CdfgCoarseGrainMapping::map(&cdfg, &dp, &SchedulerConfig::default()).unwrap();
        let freqs = [100u64, 10];
        let costs = map.block_costs(&freqs);
        assert_eq!(costs, vec![100, 20]);
        assert_eq!(costs.iter().sum::<u64>(), map.t_coarse(&freqs, |_| true));
        for (i, &cost) in costs.iter().enumerate() {
            assert_eq!(cost, map.t_coarse(&freqs, |j| j == i));
        }
    }

    #[test]
    fn reports_are_consistent() {
        let cdfg = two_block_cdfg();
        let dp = CgcDatapath::two_2x2();
        let map = CdfgCoarseGrainMapping::map(&cdfg, &dp, &SchedulerConfig::default()).unwrap();
        for m in &map.blocks {
            assert_eq!(m.report.length, m.schedule.length());
        }
    }
}
