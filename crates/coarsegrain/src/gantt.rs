//! ASCII Gantt rendering of a CGC schedule — the human-readable view of
//! what the binding step produced, one row per execution site, one column
//! per `T_CGC` cycle.

use crate::datapath::CgcDatapath;
use crate::scheduler::{Schedule, Site};
use amdrel_cdfg::Dfg;
use std::fmt::Write as _;

/// Render `schedule` as an ASCII Gantt chart.
///
/// Rows are execution sites (`cgc0.c0.r0` … and `mem0` …); columns are
/// cycles. Each occupied cell shows the node id; `.` marks idle site
/// cycles. Rendering is deterministic and line-oriented, so snapshots of
/// it are stable test fixtures.
///
/// # Examples
///
/// ```
/// use amdrel_cdfg::{Dfg, OpKind};
/// use amdrel_coarsegrain::{gantt, schedule_dfg, CgcDatapath, SchedulerConfig};
///
/// # fn main() -> Result<(), amdrel_coarsegrain::CoarseGrainError> {
/// let mut dfg = Dfg::new("mac");
/// let m = dfg.add_op(OpKind::Mul, 16);
/// let a = dfg.add_op(OpKind::Add, 32);
/// dfg.add_edge(m, a)?;
/// let dp = CgcDatapath::two_2x2();
/// let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default())?;
/// let chart = gantt(&dfg, &s, &dp);
/// assert!(chart.contains("cgc0.c0.r0"));
/// # Ok(())
/// # }
/// ```
pub fn gantt(dfg: &Dfg, schedule: &Schedule, datapath: &CgcDatapath) -> String {
    let cycles = schedule.length() as usize;
    let cell = 6usize;

    // Row labels in a fixed order: every CGC node, then memory ports.
    let mut rows: Vec<(String, Vec<Option<String>>)> = Vec::new();
    for (ci, g) in datapath.cgcs.iter().enumerate() {
        for col in 0..g.cols {
            for row in 0..g.rows {
                rows.push((format!("cgc{ci}.c{col}.r{row}"), vec![None; cycles]));
            }
        }
    }
    let cgc_rows = rows.len();
    for p in 0..datapath.mem_ports {
        rows.push((format!("mem{p}"), vec![None; cycles]));
    }

    let row_of = |site: Site| -> usize {
        match site {
            Site::CgcNode { cgc, col, row } => {
                let mut idx = 0usize;
                for (ci, g) in datapath.cgcs.iter().enumerate() {
                    if ci == cgc as usize {
                        idx += (col * g.rows + row) as usize;
                        break;
                    }
                    idx += (g.cols * g.rows) as usize;
                }
                idx
            }
            Site::MemPort { port } => cgc_rows + port as usize,
        }
    };

    for n in dfg.node_ids() {
        if let Some(p) = schedule.placement(n) {
            let label = format!("{n}");
            rows[row_of(p.site)].1[p.cycle as usize] = Some(label);
        }
    }

    let mut out = String::new();
    let _ = write!(out, "{:<12}", "site\\cycle");
    for cy in 0..cycles {
        let _ = write!(out, "{cy:>cell$}");
    }
    out.push('\n');
    for (label, cells) in rows {
        let _ = write!(out, "{label:<12}");
        for c in cells {
            match c {
                Some(id) => {
                    let _ = write!(out, "{id:>cell$}");
                }
                None => {
                    let _ = write!(out, "{:>cell$}", ".");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{schedule_dfg, SchedulerConfig};
    use amdrel_cdfg::OpKind;

    fn mac_dfg() -> Dfg {
        let mut dfg = Dfg::new("mac");
        let m = dfg.add_op(OpKind::Mul, 16);
        let a = dfg.add_op(OpKind::Add, 32);
        dfg.add_edge(m, a).unwrap();
        dfg
    }

    #[test]
    fn gantt_places_chained_pair_in_one_column() {
        let dfg = mac_dfg();
        let dp = CgcDatapath::two_2x2();
        let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
        let chart = gantt(&dfg, &s, &dp);
        // One cycle wide, nodes n0 and n1 in rows r0/r1 of the same column.
        let lines: Vec<&str> = chart.lines().collect();
        let r0 = lines.iter().find(|l| l.starts_with("cgc0.c0.r0")).unwrap();
        let r1 = lines.iter().find(|l| l.starts_with("cgc0.c0.r1")).unwrap();
        assert!(r0.contains("n0"));
        assert!(r1.contains("n1"));
    }

    #[test]
    fn gantt_covers_all_sites_and_cycles() {
        let mut dfg = Dfg::new("wide");
        for _ in 0..20 {
            dfg.add_op(OpKind::Add, 32);
        }
        for _ in 0..4 {
            dfg.add_op(OpKind::Load, 32);
        }
        let dp = CgcDatapath::two_2x2();
        let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
        let chart = gantt(&dfg, &s, &dp);
        // 8 CGC sites + 4 ports + header = 13 lines.
        assert_eq!(chart.lines().count(), 13);
        // Every placed node id appears exactly once.
        for n in dfg.node_ids() {
            let id = format!("{n}");
            let count = chart.matches(&id).count();
            assert!(count >= 1, "{id} missing from chart");
        }
        assert!(chart.contains("mem0"));
    }

    #[test]
    fn empty_schedule_renders_header_only_columns() {
        let dfg = Dfg::new("empty");
        let dp = CgcDatapath::two_2x2();
        let s = schedule_dfg(&dfg, &dp, &SchedulerConfig::default()).unwrap();
        let chart = gantt(&dfg, &s, &dp);
        assert!(chart.starts_with("site\\cycle"));
        // No cycles: rows are just labels.
        assert!(chart.lines().all(|l| !l.contains(" 0 ")));
    }
}
