//! Pure, deterministic retry backoff: a capped exponential schedule
//! with no randomness in the delay itself.
//!
//! The fault-injection layer ([`FaultSpec`](crate::FaultSpec)) decides
//! *whether* an attempt fails; this module decides only *how long* a
//! failed attempt waits before the next try. Keeping the schedule pure
//! — a function of the attempt index alone — preserves the simulator's
//! bit-determinism contract and makes the schedule reusable by future
//! networking / distributed subsystems, where jittered backoff would be
//! layered on top from a seeded stream rather than baked in here.

use serde::{Deserialize, Serialize};

/// A capped exponential backoff schedule: attempt `k` waits
/// `min(base_cycles << k, cap_cycles)` cycles (saturating, never
/// overflowing).
///
/// # Examples
///
/// ```
/// use amdrel_runtime::BackoffSchedule;
///
/// let b = BackoffSchedule { base_cycles: 100, cap_cycles: 350 };
/// assert_eq!(b.delay(0), 100);
/// assert_eq!(b.delay(1), 200);
/// assert_eq!(b.delay(2), 350); // capped (400 -> 350)
/// assert_eq!(b.delay(63), 350);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BackoffSchedule {
    /// Delay of the first retry (attempt 0), cycles.
    pub base_cycles: u64,
    /// Upper bound every delay saturates to.
    pub cap_cycles: u64,
}

impl Default for BackoffSchedule {
    /// 256 cycles doubling up to a 65 536-cycle cap — small next to the
    /// service times of the built-in case studies, so recovery latency
    /// is dominated by re-execution, not waiting.
    fn default() -> Self {
        BackoffSchedule {
            base_cycles: 256,
            cap_cycles: 65_536,
        }
    }
}

impl BackoffSchedule {
    /// The delay before retry number `attempt` (0-based), cycles.
    ///
    /// Doubles per attempt from [`Self::base_cycles`], saturating at
    /// [`Self::cap_cycles`]; immune to shift/multiply overflow at any
    /// `attempt`.
    pub fn delay(&self, attempt: u32) -> u64 {
        if self.base_cycles == 0 {
            return 0;
        }
        let doubled = if attempt >= 64 {
            u64::MAX
        } else {
            self.base_cycles.saturating_mul(1u64 << attempt.min(63))
        };
        doubled.min(self.cap_cycles)
    }

    /// Total delay of retries `0..attempts` (saturating) — what a job
    /// that exhausts `attempts` retries spends waiting in aggregate.
    pub fn total_delay(&self, attempts: u32) -> u64 {
        (0..attempts).fold(0u64, |acc, a| acc.saturating_add(self.delay(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        let b = BackoffSchedule {
            base_cycles: 100,
            cap_cycles: 1_000,
        };
        assert_eq!(b.delay(0), 100);
        assert_eq!(b.delay(1), 200);
        assert_eq!(b.delay(2), 400);
        assert_eq!(b.delay(3), 800);
        assert_eq!(b.delay(4), 1_000, "1600 saturates to the cap");
        assert_eq!(b.delay(5), 1_000);
    }

    #[test]
    fn exact_cap_boundary_is_reachable() {
        // base << 3 == cap exactly: the boundary value itself is legal.
        let b = BackoffSchedule {
            base_cycles: 125,
            cap_cycles: 1_000,
        };
        assert_eq!(b.delay(3), 1_000);
        assert_eq!(b.delay(4), 1_000);
    }

    #[test]
    fn cap_below_base_clamps_the_first_retry() {
        let b = BackoffSchedule {
            base_cycles: 500,
            cap_cycles: 100,
        };
        assert_eq!(b.delay(0), 100);
        assert_eq!(b.delay(40), 100);
    }

    #[test]
    fn zero_base_means_immediate_retries() {
        let b = BackoffSchedule {
            base_cycles: 0,
            cap_cycles: 1_000,
        };
        for a in [0, 1, 63, 64, u32::MAX] {
            assert_eq!(b.delay(a), 0);
        }
        assert_eq!(b.total_delay(10), 0);
    }

    #[test]
    fn zero_cap_means_immediate_retries() {
        let b = BackoffSchedule {
            base_cycles: 256,
            cap_cycles: 0,
        };
        assert_eq!(b.delay(0), 0);
        assert_eq!(b.delay(17), 0);
    }

    #[test]
    fn huge_attempts_never_overflow() {
        let b = BackoffSchedule {
            base_cycles: u64::MAX,
            cap_cycles: u64::MAX,
        };
        assert_eq!(b.delay(0), u64::MAX);
        assert_eq!(b.delay(1), u64::MAX, "saturating_mul, not <<");
        assert_eq!(b.delay(63), u64::MAX);
        assert_eq!(b.delay(64), u64::MAX, "shift amount never reaches 64");
        assert_eq!(b.delay(u32::MAX), u64::MAX);
        let one = BackoffSchedule {
            base_cycles: 1,
            cap_cycles: u64::MAX,
        };
        assert_eq!(one.delay(63), 1u64 << 63);
        assert_eq!(one.delay(64), u64::MAX);
    }

    #[test]
    fn total_delay_sums_the_schedule() {
        let b = BackoffSchedule {
            base_cycles: 100,
            cap_cycles: 1_000,
        };
        assert_eq!(b.total_delay(0), 0);
        assert_eq!(b.total_delay(1), 100);
        assert_eq!(b.total_delay(5), 100 + 200 + 400 + 800 + 1_000);
        let max = BackoffSchedule {
            base_cycles: u64::MAX,
            cap_cycles: u64::MAX,
        };
        assert_eq!(max.total_delay(3), u64::MAX, "sum saturates");
    }

    #[test]
    fn default_schedule_is_sane() {
        let b = BackoffSchedule::default();
        assert_eq!(b.delay(0), 256);
        assert_eq!(b.delay(8), 65_536);
        assert_eq!(b.delay(9), 65_536);
    }
}
