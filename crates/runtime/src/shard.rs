//! Sharded parallel timelines with a deterministic merge.
//!
//! [`Simulation::shards`] partitions the tenant set across `k`
//! independent shards — application `i` lives on shard
//! [`shard_of(i, k)`](shard_of) — and runs one full platform replica
//! per shard on a scoped thread. Each shard owns a private calendar
//! queue, fabric/CGC/region state and trace log, and simulates exactly
//! the subsequence of the global job stream that targets its
//! applications, with global job ids and arrival times preserved.
//!
//! # Why this is bit-deterministic
//!
//! Three properties of the single-threaded engine make the parallel run
//! mergeable without any cross-thread coordination:
//!
//! * **Disjoint event timelines.** A shard's events are totally ordered
//!   by its own `(time, seq)` keys and never reference another shard's
//!   state, so each replica replays bit-for-bit regardless of what the
//!   other threads are doing.
//! * **Forked fault streams.** [`FaultSpec`](crate::FaultSpec) draws
//!   are pure O(1) functions of `(seed, channel, job id, attempt)` —
//!   there is no shared stream cursor to race on. Because shards see
//!   the global job ids, a job's fault fate is identical under any
//!   shard count.
//! * **Exact sketch merges.** [`LatencySketch`](crate::LatencySketch)
//!   merges are pure functions of the recorded *multiset* (exact
//!   samples concatenate, histogram buckets add), so the folded
//!   percentiles never depend on shard count or fold order. The
//!   [`LatencySource`] is resolved from the *global* job count before
//!   partitioning and forced onto every shard, keeping
//!   `latency_source` shard-count-invariant.
//!
//! The merge itself runs on the calling thread after joining the shard
//! threads **in shard order**: ledgers fold via
//! `Ledger::merge` (counters add, makespan maxes, sketches merge),
//! calendar statistics fold element-wise, and per-shard event logs are
//! replayed into the caller's [`TraceSink`] in shard order — every
//! event keeps its shard-local emission position, the sink restamps the
//! global sequence, and all exporters canonicalise by `(time, seq)`.
//! The result is a pure function of the inputs, independent of `k`'s
//! thread scheduling.
//!
//! `k == 1` never enters this module (the builder routes it through the
//! single-threaded engine untouched), and a workload whose jobs all
//! target one application leaves every shard but one silent — so both
//! degenerate cases are *byte*-identical to the unsharded oracle,
//! report, JSON, metrics and trace included.

use crate::calendar::CalendarStats;
use crate::report::RuntimeReport;
use crate::sim::{Engine, Ledger, Simulation};
use crate::sketch::LatencySource;
use crate::workload::Job;
use amdrel_trace::{TraceBuffer, TraceSink};

/// The shard partition function: application `app` lives on shard
/// `app % shards`. Deterministic, total, and independent of the job
/// stream — the same function the sharded benches use to pre-partition
/// work for serial per-shard timing.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(app: usize, shards: usize) -> usize {
    assert!(shards > 0, "a simulation needs at least one shard");
    app % shards
}

/// Run `sim` over the time-sorted `jobs` stream with `sim.shards`
/// parallel shards and merge the results deterministically. Callers
/// (the [`Simulation`] dispatch) resolve `source` from the global job
/// count first, so every shard records into the same sketch
/// representation.
pub(crate) fn run_sharded<I: Iterator<Item = Job>>(
    sim: &Simulation<'_>,
    jobs: I,
    source: LatencySource,
) -> RuntimeReport {
    let k = sim.shards;
    debug_assert!(k > 1, "the single-shard path stays on the plain engine");
    // Partition the globally time-sorted stream. Each shard's
    // subsequence keeps its relative order (so per-shard arrivals stay
    // non-decreasing) and every job keeps its global id and arrival —
    // the fault stream and the policies see exactly what the unsharded
    // engine would.
    let mut parts: Vec<Vec<Job>> = vec![Vec::new(); k];
    for job in jobs {
        parts[shard_of(job.app, k)].push(job);
    }
    let tracing = sim.trace.is_some();
    let buffers: Vec<TraceBuffer> = (0..k).map(|_| TraceBuffer::new()).collect();
    let mut folds: Vec<(Ledger, CalendarStats)> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .zip(&buffers)
            .map(|(shard_jobs, buffer)| {
                let mut shard_sim = *sim;
                shard_sim.shards = 1;
                shard_sim.trace = tracing.then_some(buffer as &dyn TraceSink);
                scope
                    .spawn(move || Engine::new(&shard_sim, source).run_core(shard_jobs.into_iter()))
            })
            .collect();
        // Join strictly in shard order: whichever thread finishes
        // first, the fold below always consumes shard 0, then 1, … so
        // the merged report cannot depend on the scheduler.
        for handle in handles {
            folds.push(handle.join().expect("shard thread panicked"));
        }
    });

    let mut folds = folds.into_iter();
    let (mut ledger, mut queue) = folds.next().expect("at least one shard ran");
    for (shard_ledger, shard_queue) in folds {
        ledger.merge(shard_ledger);
        // Event and rehash counts add across the disjoint calendars;
        // peak occupancy is the worst single shard. The day width is a
        // pure function of the profiles, which every replica shares.
        queue.events += shard_queue.events;
        queue.rehashes += shard_queue.rehashes;
        queue.peak_occupancy = queue.peak_occupancy.max(shard_queue.peak_occupancy);
        debug_assert_eq!(
            queue.day_width, shard_queue.day_width,
            "replicas share one profile-derived day width"
        );
    }

    if let Some(sink) = sim.trace {
        // Replay the per-shard event logs into the caller's sink in
        // shard order. The sink restamps the global sequence numbers;
        // exporters canonicalise by (time, seq), so the rendered trace
        // is a pure function of the per-shard logs and the shard order.
        for buffer in &buffers {
            for event in buffer.take() {
                sink.record(event);
            }
        }
    }

    let mut report = ledger.into_report(
        sim.profiles,
        sim.policy.name(),
        sim.config,
        sim.platform.datapath.cgcs.len(),
        sim.faults,
        sim.recovery,
    );
    report.queue = queue;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fcfs;
    use crate::profile::AppProfile;
    use crate::workload::WorkloadSpec;
    use amdrel_core::Platform;

    fn profiles() -> Vec<AppProfile> {
        vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ]
    }

    #[test]
    fn shard_of_is_the_documented_modulus() {
        assert_eq!(shard_of(0, 3), 0);
        assert_eq!(shard_of(1, 3), 1);
        assert_eq!(shard_of(5, 3), 2);
        assert_eq!(shard_of(7, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_of(0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_builder_panics() {
        let platform = Platform::paper(1500, 2);
        let _ = Simulation::new(&platform).shards(0);
    }

    #[test]
    fn sharded_counters_match_the_unsharded_oracle() {
        let profiles = profiles();
        let platform = Platform::paper(1500, 2);
        let spec = WorkloadSpec::uniform(42, 240, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let base = Simulation::new(&platform).profiles(&profiles).policy(&Fcfs);
        let oracle = base.run(&jobs);
        for k in [2, 3, 8] {
            let sharded = base.shards(k).run(&jobs);
            assert_eq!(sharded.arrived(), oracle.arrived(), "k={k}");
            assert_eq!(sharded.completed(), oracle.completed(), "k={k}");
            assert_eq!(sharded.rejected(), oracle.rejected(), "k={k}");
            assert_eq!(sharded.latency_source, oracle.latency_source, "k={k}");
            assert_eq!(
                sharded.fpga_busy_cycles + sharded.cgc_busy_cycles,
                oracle.fpga_busy_cycles + oracle.cgc_busy_cycles,
                "work conservation across replicas, k={k}"
            );
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_the_plain_engine() {
        let profiles = profiles();
        let platform = Platform::paper(1500, 2);
        let spec = WorkloadSpec::uniform(7, 180, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let base = Simulation::new(&platform).profiles(&profiles).policy(&Fcfs);
        assert_eq!(base.run(&jobs), base.shards(1).run(&jobs));
    }
}
