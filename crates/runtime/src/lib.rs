//! # amdrel-runtime — reconfiguration-aware multi-tenant runtime
//! simulator
//!
//! The paper's methodology partitions one application statically;
//! related work on partially dynamically reconfigurable systems (Ding et
//! al. 2022, Chen et al. 2018) treats module scheduling and
//! reconfiguration latency as first-class runtime concerns. This crate
//! models that runtime: kernels from many concurrent application
//! instances contend for the CGC datapath and the fine-grain fabric,
//! and swapping one application's temporal-partition set onto the FPGA
//! costs real reconfiguration cycles.
//!
//! * [`AppProfile`] — one application's per-job cost on each half of the
//!   platform plus its fine-grain [`FabricConfig`], derived from the
//!   static flow's [`PartitionResult`](amdrel_core::PartitionResult)
//!   and temporal partitioning;
//! * [`WorkloadSpec`] — a seeded arrival process over an application
//!   mix, bit-reproducible and prefix-stable, built on
//!   [`amdrel_core::rng`];
//! * [`SchedulePolicy`] — pluggable dispatch: [`Fcfs`],
//!   [`ShortestJobFirst`], [`PriorityFirst`], [`ConfigAffinity`];
//! * [`run_simulation`] — the deterministic discrete-event simulator
//!   (events totally ordered by `(time, sequence)`), with a
//!   configuration cache, optional bitstream prefetch and an admission
//!   bound ([`SimConfig`]); [`simulate_mix`] is the one-shot
//!   `spec → jobs → report` convenience used by external scorers such
//!   as `amdrel-explore`'s contention-aware objectives;
//! * [`RuntimeReport`] — per-app latency percentiles, CGC/FPGA
//!   utilization, reconfiguration loads and stall cycles, rejection
//!   counts; renders as a table or JSON (schema `amdrel-simulate/v1`).
//!
//! # Examples
//!
//! ```
//! use amdrel_core::Platform;
//! use amdrel_runtime::{
//!     run_simulation, AppProfile, Fcfs, ShortestJobFirst, SimConfig, WorkloadSpec,
//! };
//!
//! // Two tenants: a light interactive app and a heavy batch app.
//! let profiles = vec![
//!     AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
//!     AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
//! ];
//! let platform = Platform::paper(1500, 2);
//! let spec = WorkloadSpec::uniform(42, 64, &profiles, 120); // 20% overload
//! let jobs = spec.generate(&profiles);
//!
//! let fcfs = run_simulation(&profiles, &jobs, &platform, &Fcfs, &SimConfig::default());
//! let sjf = run_simulation(&profiles, &jobs, &platform, &ShortestJobFirst, &SimConfig::default());
//! assert_eq!(fcfs.arrived(), 64);
//! // Work-conserving single fabric: both policies drain the same work.
//! assert_eq!(fcfs.completed(), sjf.completed());
//! println!("{}", sjf.format_table());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod policy;
mod profile;
mod report;
mod sim;
mod workload;

pub use policy::{
    policy_by_name, ConfigAffinity, Fcfs, PriorityFirst, SchedulePolicy, ShortestJobFirst,
};
pub use profile::{AppProfile, ConfigId, FabricConfig};
pub use report::{report_to_json, AppStats, RuntimeReport};
pub use sim::{run_simulation, simulate_mix, SimConfig};
pub use workload::{AppShare, Job, WorkloadSpec};
