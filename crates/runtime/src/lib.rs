//! # amdrel-runtime — reconfiguration-aware multi-tenant runtime
//! simulator
//!
//! The paper's methodology partitions one application statically;
//! related work on partially dynamically reconfigurable systems (Ding et
//! al. 2022, Chen et al. 2018) treats module scheduling and
//! reconfiguration latency as first-class runtime concerns. This crate
//! models that runtime: kernels from many concurrent application
//! instances contend for the CGC datapath and the fine-grain fabric,
//! and swapping one application's temporal-partition set onto the FPGA
//! costs real reconfiguration cycles.
//!
//! * [`AppProfile`] — one application's per-job cost on each half of the
//!   platform plus its fine-grain [`FabricConfig`], derived from the
//!   static flow's [`PartitionResult`](amdrel_core::PartitionResult)
//!   and temporal partitioning;
//! * [`WorkloadSpec`] — a seeded arrival process over an application
//!   mix, bit-reproducible and prefix-stable, built on
//!   [`amdrel_core::rng`]; [`WorkloadSpec::generate_streaming`] yields
//!   the identical stream lazily for million-job runs;
//! * [`SchedulePolicy`] — pluggable dispatch: [`Fcfs`],
//!   [`ShortestJobFirst`], [`PriorityFirst`], [`ConfigAffinity`];
//! * [`Simulation`] — the builder facade over the deterministic
//!   discrete-event simulator (calendar-queue event core, events totally
//!   ordered by `(time, sequence)`), with a configuration cache,
//!   optional bitstream prefetch, an admission bound ([`SimConfig`])
//!   and streaming latency aggregation ([`SketchMode`]); the historical
//!   free functions `run_simulation` / `simulate_mix` remain as
//!   deprecated shims over it; [`Simulation::shards`] partitions the
//!   tenants across `k` independent platform replicas ([`shard_of`]:
//!   application `i` → shard `i % k`) run on scoped threads and folded
//!   back with a deterministic shard-order merge, so the merged report
//!   is independent of thread scheduling and degenerates bit-identically
//!   to the single-threaded engine at `k == 1`;
//! * [`RegionPlan`] — a frozen joint floorplan of every tenant's
//!   configuration footprints (via `amdrel-floorplan`) turning the
//!   scalar area pool into per-region configuration state: a tenant's
//!   load reprograms only the regions it touches, priced by *region*
//!   area, overlapping execution on untouched regions; a single
//!   full-fabric region degenerates bit-identically to the scalar path;
//! * [`FaultSpec`] / [`RecoveryPolicy`] — seeded, bit-deterministic
//!   fault injection (reconfiguration-load failures, transient fabric
//!   kills, CGC slot outages with timed repair, per-job deadlines) and
//!   the recovery layered on top: bounded retry under a pure
//!   [`BackoffSchedule`], plus graceful degradation to the
//!   coarse-grain-only fallback path
//!   ([`AppProfile::fallback_cycles`]); the zero-rate spec is inert and
//!   leaves every report byte-identical to a fault-free run;
//! * [`LatencySketch`] — deterministic integer-only quantile sketch
//!   (O(1) memory in the job count) with an exact fallback below
//!   [`EXACT_THRESHOLD`] jobs;
//! * [`RuntimeReport`] — per-app latency percentiles, CGC/FPGA
//!   utilization, reconfiguration loads and stall cycles, rejection
//!   counts, percentile provenance ([`LatencySource`]), reliability
//!   metrics ([`ReliabilityStats`]: injected/retried/degraded/aborted
//!   counts, availability, goodput vs raw throughput, fault-conditioned
//!   p95s) and calendar-queue internals ([`CalendarStats`]); renders as
//!   a table or JSON (schema `amdrel-simulate/v4`, with a flat `metrics`
//!   registry via [`RuntimeReport::metrics`]);
//! * **tracing** — [`Simulation::trace`] attaches an
//!   [`amdrel_trace::TraceSink`] the engine emits per-job lifecycle
//!   events into (arrival, queueing, per-region reconfiguration, fine
//!   and coarse phases, faults, retries, recovery), timestamped in
//!   simulated cycles and deterministically ordered; a pure observer
//!   that never perturbs the run.
//!
//! # Examples
//!
//! ```
//! use amdrel_core::Platform;
//! use amdrel_runtime::{AppProfile, Fcfs, ShortestJobFirst, Simulation, WorkloadSpec};
//!
//! // Two tenants: a light interactive app and a heavy batch app.
//! let profiles = vec![
//!     AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
//!     AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
//! ];
//! let platform = Platform::paper(1500, 2);
//! let spec = WorkloadSpec::uniform(42, 64, &profiles, 120); // 20% overload
//!
//! let base = Simulation::new(&platform).profiles(&profiles);
//! let fcfs = base.policy(&Fcfs).run_mix(&spec);
//! let sjf = base.policy(&ShortestJobFirst).run_mix(&spec);
//! assert_eq!(fcfs.arrived(), 64);
//! // Work-conserving single fabric: both policies drain the same work.
//! assert_eq!(fcfs.completed(), sjf.completed());
//! println!("{}", sjf.format_table());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backoff;
mod calendar;
mod fault;
mod policy;
mod profile;
mod region;
mod report;
mod shard;
mod sim;
mod sketch;
mod workload;

pub use backoff::BackoffSchedule;
pub use calendar::CalendarStats;
pub use fault::{FaultSpec, RecoveryPolicy};
pub use policy::{
    policy_by_name, ConfigAffinity, Fcfs, PriorityFirst, SchedulePolicy, ShortestJobFirst,
};
pub use profile::{AppProfile, ConfigId, FabricConfig, FALLBACK_FINE_PENALTY};
pub use region::RegionPlan;
pub use report::{report_to_json, AppStats, ReliabilityStats, RuntimeReport};
pub use shard::shard_of;
#[allow(deprecated)]
pub use sim::{run_simulation, simulate_mix};
pub use sim::{SimConfig, Simulation};
pub use sketch::{LatencySketch, LatencySource, SketchMode, EXACT_THRESHOLD, SUB_BITS};
pub use workload::{AppShare, Job, JobStream, WorkloadSpec};
