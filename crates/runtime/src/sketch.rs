//! Streaming latency aggregation: deterministic quantile sketches with
//! an exact fallback, so report memory is O(1) in the job count.
//!
//! The buffered approach (`Vec<u64>` of every completion latency) makes
//! memory grow linearly with jobs — fine at 400 jobs, fatal at a
//! million. A [`LatencySketch`] replaces the buffer with a log-bucketed
//! integer histogram (HDR-histogram style): each recorded value lands in
//! a bucket whose width is at most `value / 2^SUB_BITS`, so any
//! percentile read back from the counts is **never below** the exact
//! nearest-rank value and overshoots it by at most one part in
//! 2^[`SUB_BITS`] (< 0.8%). P²/CKMS sketches were considered and
//! rejected: both interpolate in floating point, which would break the
//! workspace's bit-identical-replay contract. The histogram uses integer
//! arithmetic only, is a pure function of the recorded *multiset* (merge
//! and insertion order never change a query), and needs at most
//! [`LatencySketch::MAX_BUCKETS`] counters regardless of how many values
//! are recorded.
//!
//! Below [`EXACT_THRESHOLD`] recorded values the sketch keeps the exact
//! sample instead ([`SketchMode::Auto`]), so small runs — including the
//! committed 400-job `BENCH_runtime.json` baselines — reproduce the
//! historical nearest-rank percentiles byte-for-byte.

use serde::{Deserialize, Serialize};

/// Sub-bucket precision: each power-of-two magnitude is split into
/// `2^SUB_BITS` linear buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (1/128 < 0.8%).
pub const SUB_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Job-count threshold below which [`SketchMode::Auto`] keeps the exact
/// sample (byte-identical historical percentiles) instead of sketching.
pub const EXACT_THRESHOLD: usize = 4096;

/// How a [`Simulation`](crate::Simulation) aggregates completion
/// latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SketchMode {
    /// Exact below [`EXACT_THRESHOLD`] total jobs, sketched at or above
    /// it (the default: small runs stay byte-identical to the historical
    /// exact percentiles, large runs stay O(1) in memory).
    Auto,
    /// Always buffer the exact sample (memory O(jobs)).
    Exact,
    /// Always sketch (memory O(1), percentiles within the documented
    /// error bound).
    Sketched,
}

impl SketchMode {
    /// Resolve the mode against the run's total job count.
    pub fn resolve(self, total_jobs: usize) -> LatencySource {
        match self {
            SketchMode::Exact => LatencySource::Exact,
            SketchMode::Sketched => LatencySource::Sketched,
            SketchMode::Auto if total_jobs < EXACT_THRESHOLD => LatencySource::Exact,
            SketchMode::Auto => LatencySource::Sketched,
        }
    }

    /// Parse a CLI value (`auto`, `exact`, `sketched`).
    pub fn parse(name: &str) -> Option<SketchMode> {
        match name {
            "auto" => Some(SketchMode::Auto),
            "exact" => Some(SketchMode::Exact),
            "sketched" => Some(SketchMode::Sketched),
            _ => None,
        }
    }
}

/// Provenance of a report's latency percentiles (recorded in the
/// `amdrel-simulate/v2` JSON so consumers know whether percentiles are
/// exact nearest-rank values or sketch upper bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencySource {
    /// Percentiles are exact nearest-rank values of the full sample.
    Exact,
    /// Percentiles come from the log-bucketed histogram: never below the
    /// exact value, above it by at most `2^-SUB_BITS` relative.
    Sketched,
}

impl LatencySource {
    /// The JSON/report string (`"exact"` / `"sketched"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LatencySource::Exact => "exact",
            LatencySource::Sketched => "sketched",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    Exact(Vec<u64>),
    /// Bucket counts, lazily grown to the highest occupied index.
    Hist(Vec<u64>),
}

/// A deterministic streaming aggregate of completion latencies.
///
/// Tracks the count and exact maximum in both representations; the
/// percentile machinery is either the exact sample or the log-bucketed
/// histogram depending on the [`LatencySource`] it was built for.
///
/// # Examples
///
/// ```
/// use amdrel_runtime::{LatencySketch, LatencySource};
///
/// let mut sketch = LatencySketch::new(LatencySource::Sketched);
/// for v in [10_000u64, 20_000, 30_000, 40_000] {
///     sketch.record(v);
/// }
/// let p50 = sketch.percentile(50);
/// // Never below the exact nearest-rank value, within 1/128 above it.
/// assert!(p50 >= 20_000 && p50 <= 20_000 + 20_000 / 128);
/// assert_eq!(sketch.max(), 40_000, "the maximum is always exact");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySketch {
    count: u64,
    max: u64,
    repr: Repr,
}

impl LatencySketch {
    /// Upper bound on histogram counters: 64 magnitudes × `2^SUB_BITS`
    /// sub-buckets (the first magnitude's buckets are exact values).
    pub const MAX_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

    /// An empty sketch for the given representation.
    pub fn new(source: LatencySource) -> Self {
        LatencySketch {
            count: 0,
            max: 0,
            repr: match source {
                LatencySource::Exact => Repr::Exact(Vec::new()),
                LatencySource::Sketched => Repr::Hist(Vec::new()),
            },
        }
    }

    /// The representation this sketch records into.
    pub fn source(&self) -> LatencySource {
        match self.repr {
            Repr::Exact(_) => LatencySource::Exact,
            Repr::Hist(_) => LatencySource::Sketched,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Record one latency.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.max = self.max.max(value);
        match &mut self.repr {
            Repr::Exact(sample) => sample.push(value),
            Repr::Hist(counts) => {
                let idx = bucket_index(value);
                if counts.len() <= idx {
                    counts.resize(idx + 1, 0);
                }
                counts[idx] += 1;
            }
        }
    }

    /// Fold `other` into `self`. Exact merges concatenate samples;
    /// sketched merges add counts — both are order-independent.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches use different representations (a
    /// simulation resolves one [`SketchMode`] for the whole run, so
    /// mixed merges indicate a bug).
    pub fn merge_from(&mut self, other: &LatencySketch) {
        self.count += other.count;
        self.max = self.max.max(other.max);
        match (&mut self.repr, &other.repr) {
            (Repr::Exact(sample), Repr::Exact(theirs)) => sample.extend_from_slice(theirs),
            (Repr::Hist(counts), Repr::Hist(theirs)) => {
                if counts.len() < theirs.len() {
                    counts.resize(theirs.len(), 0);
                }
                for (c, t) in counts.iter_mut().zip(theirs) {
                    *c += t;
                }
            }
            _ => panic!("cannot merge an exact sketch with a sketched one"),
        }
    }

    /// Consume `other` and fold it in, returning the merged sketch —
    /// the combinator form of [`LatencySketch::merge_from`] the sharded
    /// runner folds per-shard aggregates with.
    ///
    /// The merge is **exact-associative**: both representations combine
    /// as pure functions of the recorded multiset (exact samples
    /// concatenate counts and values; histogram buckets add), so
    /// `a.merge(&b).merge(&c)` equals `a.merge(&b.clone().merge(&c))`
    /// in every queryable field, and any percentile of the result is
    /// independent of how many shards the sample was split across.
    ///
    /// # Panics
    ///
    /// As [`LatencySketch::merge_from`]: panics if the representations
    /// differ.
    #[must_use]
    pub fn merge(mut self, other: &LatencySketch) -> LatencySketch {
        self.merge_from(other);
        self
    }

    /// Nearest-rank percentile (`q` in percent; 0 for an empty sketch).
    ///
    /// Exact representation: identical to sorting the sample and taking
    /// the nearest-rank element. Sketched: the upper bound of the bucket
    /// holding the nearest-rank element — at least the exact value, at
    /// most `1 + 2^-SUB_BITS` times it.
    pub fn percentile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count).div_ceil(100).clamp(1, self.count);
        match &self.repr {
            Repr::Exact(sample) => {
                let mut sorted = sample.clone();
                sorted.sort_unstable();
                sorted[(rank - 1) as usize]
            }
            Repr::Hist(counts) => {
                let mut seen = 0u64;
                for (idx, &c) in counts.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        return bucket_high(idx);
                    }
                }
                unreachable!("rank {rank} exceeds recorded count {}", self.count)
            }
        }
    }

    /// Counters currently allocated (exact: sample length; sketched:
    /// bucket count, bounded by [`Self::MAX_BUCKETS`] independent of the
    /// recorded count).
    pub fn allocated(&self) -> usize {
        match &self.repr {
            Repr::Exact(sample) => sample.len(),
            Repr::Hist(counts) => counts.len(),
        }
    }
}

/// Bucket of `value`: values below `2^SUB_BITS` map to themselves; a
/// value with most-significant bit `h ≥ SUB_BITS` maps into one of
/// `2^SUB_BITS` linear sub-buckets of magnitude `h`, each of width
/// `2^(h - SUB_BITS)`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let h = 63 - value.leading_zeros();
    let shift = h - SUB_BITS;
    let base = ((h - SUB_BITS + 1) as usize) << SUB_BITS;
    base + ((value >> shift) - SUB_BUCKETS) as usize
}

/// Largest value mapping to bucket `idx` (the deterministic
/// representative [`LatencySketch::percentile`] reports).
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let magnitude = (idx >> SUB_BITS) as u32; // ≥ 1
    let h = magnitude + SUB_BITS - 1;
    let shift = h - SUB_BITS;
    let sub = (idx as u64) & (SUB_BUCKETS - 1);
    ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(mut sample: Vec<u64>, q: u64) -> u64 {
        sample.sort_unstable();
        let n = sample.len() as u64;
        let rank = (q * n).div_ceil(100).clamp(1, n);
        sample[(rank - 1) as usize]
    }

    #[test]
    fn buckets_roundtrip_and_bound_error() {
        for v in (0u64..2048).chain([4_095, 4_096, 1 << 20, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            let high = bucket_high(idx);
            assert!(high >= v, "bucket high {high} below value {v}");
            // Relative width bound: high - v < v / 2^SUB_BITS + 1.
            assert!(
                high - v <= v >> SUB_BITS,
                "bucket of {v} overshoots to {high}"
            );
            assert!(idx < LatencySketch::MAX_BUCKETS);
        }
        // Small values are exact.
        assert_eq!(bucket_high(bucket_index(97)), 97);
    }

    #[test]
    fn exact_repr_matches_nearest_rank() {
        let sample = vec![30u64, 10, 20, 90, 50, 40, 80, 60, 70, 100];
        let mut sketch = LatencySketch::new(LatencySource::Exact);
        for &v in &sample {
            sketch.record(v);
        }
        for q in [1, 50, 95, 100] {
            assert_eq!(sketch.percentile(q), exact_nearest_rank(sample.clone(), q));
        }
        assert_eq!(sketch.max(), 100);
        assert_eq!(sketch.count(), 10);
    }

    #[test]
    fn sketched_repr_bounds_the_error() {
        let sample: Vec<u64> = (1..=10_000u64).map(|i| i * 37 + (i % 13) * 1009).collect();
        let mut sketch = LatencySketch::new(LatencySource::Sketched);
        for &v in &sample {
            sketch.record(v);
        }
        for q in [1, 25, 50, 75, 95, 99, 100] {
            let exact = exact_nearest_rank(sample.clone(), q);
            let approx = sketch.percentile(q);
            assert!(approx >= exact, "p{q}: {approx} < exact {exact}");
            assert!(
                approx - exact <= exact >> SUB_BITS,
                "p{q}: {approx} overshoots exact {exact}"
            );
        }
        assert!(sketch.allocated() <= LatencySketch::MAX_BUCKETS);
    }

    #[test]
    fn merge_is_order_independent() {
        let (a, b): (Vec<u64>, Vec<u64>) = ((1..500u64).collect(), (300..900u64).collect());
        let build = |values: &[u64]| {
            let mut s = LatencySketch::new(LatencySource::Sketched);
            values.iter().for_each(|&v| s.record(v));
            s
        };
        let mut ab = build(&a);
        ab.merge_from(&build(&b));
        let mut ba = build(&b);
        ba.merge_from(&build(&a));
        assert_eq!(ab, ba);
        assert_eq!(ab.percentile(95), ba.percentile(95));
    }

    #[test]
    fn merge_combinator_is_exact_associative() {
        for source in [LatencySource::Exact, LatencySource::Sketched] {
            let build = |lo: u64, hi: u64| {
                let mut s = LatencySketch::new(source);
                (lo..hi).for_each(|v| s.record(v * 37 % 50_021));
                s
            };
            let (a, b, c) = (build(0, 400), build(400, 900), build(900, 1_700));
            let left = a.clone().merge(&b).merge(&c);
            let right = a.clone().merge(&b.clone().merge(&c));
            assert_eq!(left, right, "{source:?}: associativity");
            // Shard-count invariance: one sketch over the union equals
            // any split-and-merge of the same multiset.
            let whole = build(0, 1_700);
            assert_eq!(left, whole, "{source:?}: split vs whole");
            for q in [1, 50, 95, 100] {
                assert_eq!(left.percentile(q), whole.percentile(q));
            }
            assert_eq!(left.count(), 1_700);
            assert_eq!(left.max(), whole.max());
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn mixed_merge_panics() {
        let mut a = LatencySketch::new(LatencySource::Exact);
        a.merge_from(&LatencySketch::new(LatencySource::Sketched));
    }

    #[test]
    fn auto_mode_resolves_on_threshold() {
        assert_eq!(SketchMode::Auto.resolve(400), LatencySource::Exact);
        assert_eq!(
            SketchMode::Auto.resolve(EXACT_THRESHOLD),
            LatencySource::Sketched
        );
        assert_eq!(SketchMode::Exact.resolve(1 << 30), LatencySource::Exact);
        assert_eq!(SketchMode::Sketched.resolve(1), LatencySource::Sketched);
        assert_eq!(SketchMode::parse("sketched"), Some(SketchMode::Sketched));
        assert_eq!(SketchMode::parse("p2"), None);
    }

    #[test]
    fn memory_is_constant_in_count() {
        let mut s = LatencySketch::new(LatencySource::Sketched);
        for i in 0..200_000u64 {
            s.record(i * 7919 % 1_000_003);
        }
        assert_eq!(s.count(), 200_000);
        assert!(s.allocated() <= LatencySketch::MAX_BUCKETS);
    }
}
