//! Seeded workload generation: a stream of job arrivals drawn from an
//! application mix.
//!
//! The generator is built on [`amdrel_core::rng::SplitMix64`] with one
//! forked stream per concern (inter-arrival gaps, app selection, service
//! jitter), so the generated stream is bit-reproducible, independent of
//! how the simulator later consumes randomness (it consumes none), and
//! *prefix-stable*: growing `jobs` extends the stream without changing
//! the jobs already generated.

use crate::profile::{AppProfile, ConfigId};
use amdrel_core::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// One application's share of the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppShare {
    /// Index into the profile slice passed to [`WorkloadSpec::generate`].
    pub app: usize,
    /// Relative arrival weight (must be nonzero).
    pub weight: u32,
}

/// A generated job instance, ready for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Job {
    /// Arrival sequence number (0-based; the event tie-breaker).
    pub id: u64,
    /// Index of the application profile this job instantiates.
    pub app: usize,
    /// Arrival time in FPGA cycles.
    pub arrival: u64,
    /// Scheduling priority inherited from the profile.
    pub priority: u8,
    /// Fine-grain demand for this job (profile value × jitter).
    pub fine_cycles: u64,
    /// Coarse-grain + communication demand for this job (× jitter).
    pub coarse_cycles: u64,
    /// The fine-grain configuration the job needs loaded.
    pub config: ConfigId,
}

impl Job {
    /// Total service demand (the shortest-job-first key).
    pub fn service_cycles(&self) -> u64 {
        self.fine_cycles + self.coarse_cycles
    }
}

/// A seeded arrival process over an application mix.
///
/// # Examples
///
/// ```
/// use amdrel_runtime::{AppProfile, AppShare, WorkloadSpec};
///
/// let profiles = vec![
///     AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400]),
///     AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
/// ];
/// let spec = WorkloadSpec {
///     seed: 42,
///     jobs: 64,
///     mean_interarrival: 10_000,
///     mix: vec![AppShare { app: 0, weight: 3 }, AppShare { app: 1, weight: 1 }],
/// };
/// let jobs = spec.generate(&profiles);
/// assert_eq!(jobs.len(), 64);
/// // Prefix-stable: growing the stream never rewrites history.
/// let longer = WorkloadSpec { jobs: 128, ..spec.clone() }.generate(&profiles);
/// assert_eq!(jobs[..], longer[..64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Master seed; every derived stream forks from it.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean inter-arrival gap in FPGA cycles (gaps are uniform on
    /// `1..=2×mean`, so the realised mean is `mean + 0.5`).
    pub mean_interarrival: u64,
    /// The application mix (weights need not be normalised).
    pub mix: Vec<AppShare>,
}

/// Per-job service jitter: ±25% around the profile value, in permille
/// steps, so heterogeneous job sizes exercise the size-aware policies.
const JITTER_MIN_PERMILLE: u64 = 750;
const JITTER_SPAN: u64 = 501; // 750..=1250

impl WorkloadSpec {
    /// A uniform mix over all `profiles`, paced so the *fine-grain*
    /// offered load is `load_percent`% of the FPGA's capacity (the
    /// fabric is the contended serial resource; >100 means overload).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `load_percent == 0`.
    pub fn uniform(seed: u64, jobs: usize, profiles: &[AppProfile], load_percent: u64) -> Self {
        WorkloadSpec {
            seed,
            jobs,
            mean_interarrival: WorkloadSpec::mean_interarrival_for(profiles, load_percent),
            mix: (0..profiles.len())
                .map(|app| AppShare { app, weight: 1 })
                .collect(),
        }
    }

    /// The mean inter-arrival gap that offers `load_percent`% of
    /// `profiles`' average fine-grain demand — [`Self::uniform`]'s
    /// pacing rule, exposed so callers that pin an absolute arrival
    /// rate (e.g. contention-aware exploration) derive it from the
    /// same convention.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `load_percent == 0`.
    pub fn mean_interarrival_for(profiles: &[AppProfile], load_percent: u64) -> u64 {
        assert!(!profiles.is_empty(), "need at least one application");
        assert!(load_percent > 0, "offered load must be positive");
        let mean_fine: u64 =
            profiles.iter().map(|p| p.fine_cycles).sum::<u64>() / profiles.len() as u64;
        (mean_fine * 100 / load_percent).max(1)
    }

    /// Generate the arrival stream against `profiles`.
    ///
    /// Equivalent to collecting [`WorkloadSpec::generate_streaming`];
    /// use the iterator directly when the stream is large.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, a weight is zero, or an app index is
    /// out of range.
    pub fn generate(&self, profiles: &[AppProfile]) -> Vec<Job> {
        self.generate_streaming(profiles).collect()
    }

    /// Generate the arrival stream lazily, one [`Job`] at a time, so a
    /// million-job run never materialises the full `Vec<Job>`. Yields
    /// exactly the sequence [`WorkloadSpec::generate`] returns (the
    /// property tests pin prefix-for-prefix equality), with strictly
    /// increasing arrival times.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty, a weight is zero, or an app index is
    /// out of range.
    pub fn generate_streaming<'a>(&'a self, profiles: &'a [AppProfile]) -> JobStream<'a> {
        assert!(!self.mix.is_empty(), "workload mix must not be empty");
        let total_weight: u64 = self
            .mix
            .iter()
            .map(|s| {
                assert!(s.weight > 0, "mix weights must be nonzero");
                assert!(
                    s.app < profiles.len(),
                    "mix references app {} but only {} profiles given",
                    s.app,
                    profiles.len()
                );
                u64::from(s.weight)
            })
            .sum();

        let mut master = SplitMix64::new(self.seed);
        let arrivals = master.fork();
        let picks = master.fork();
        let jitter = master.fork();

        JobStream {
            profiles,
            mix: &self.mix,
            total_weight,
            arrivals,
            picks,
            jitter,
            mean: self.mean_interarrival.max(1),
            now: 0,
            next_id: 0,
            remaining: self.jobs,
        }
    }
}

/// The lazy job iterator behind [`WorkloadSpec::generate_streaming`].
///
/// Exact-size, and yields jobs in strictly increasing arrival order —
/// the contract [`Simulation::run_streaming`](crate::Simulation::run_streaming)
/// relies on for its lazy arrival merge.
#[derive(Debug, Clone)]
pub struct JobStream<'a> {
    profiles: &'a [AppProfile],
    mix: &'a [AppShare],
    total_weight: u64,
    arrivals: SplitMix64,
    picks: SplitMix64,
    jitter: SplitMix64,
    mean: u64,
    now: u64,
    next_id: u64,
    remaining: usize,
}

impl Iterator for JobStream<'_> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        self.now += 1 + self.arrivals.below(2 * self.mean);
        let mut ticket = self.picks.below(self.total_weight);
        let mut chosen = self.mix[0].app;
        for share in self.mix {
            if ticket < u64::from(share.weight) {
                chosen = share.app;
                break;
            }
            ticket -= u64::from(share.weight);
        }
        let profile = &self.profiles[chosen];
        let fine_scale = JITTER_MIN_PERMILLE + self.jitter.below(JITTER_SPAN);
        let coarse_scale = JITTER_MIN_PERMILLE + self.jitter.below(JITTER_SPAN);
        let coarse_demand = profile.coarse_cycles + profile.comm_cycles;
        Some(Job {
            id,
            app: chosen,
            arrival: self.now,
            priority: profile.priority,
            fine_cycles: scale(profile.fine_cycles, fine_scale),
            coarse_cycles: scale(coarse_demand, coarse_scale),
            config: profile.config.id,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for JobStream<'_> {}

/// `value × permille / 1000`, keeping nonzero values nonzero so a jittered
/// job never degenerates to a zero-length phase.
fn scale(value: u64, permille: u64) -> u64 {
    if value == 0 {
        0
    } else {
        (value.saturating_mul(permille) / 1000).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<AppProfile> {
        vec![
            AppProfile::synthetic("a", 2, 1_000, 300, vec![400]),
            AppProfile::synthetic("b", 0, 10_000, 2_000, vec![900, 300]),
        ]
    }

    fn spec(jobs: usize) -> WorkloadSpec {
        WorkloadSpec {
            seed: 42,
            jobs,
            mean_interarrival: 2_000,
            mix: vec![
                AppShare { app: 0, weight: 3 },
                AppShare { app: 1, weight: 1 },
            ],
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profiles();
        assert_eq!(spec(64).generate(&p), spec(64).generate(&p));
    }

    #[test]
    fn growing_jobs_is_prefix_stable() {
        let p = profiles();
        let short = spec(16).generate(&p);
        let long = spec(64).generate(&p);
        assert_eq!(short[..], long[..16]);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_jitter_bounded() {
        let p = profiles();
        let jobs = spec(200).generate(&p);
        assert_eq!(jobs.len(), 200);
        for w in jobs.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
        for j in &jobs {
            let base = p[j.app].fine_cycles;
            assert!(j.fine_cycles >= base * 750 / 1000);
            assert!(j.fine_cycles <= base * 1250 / 1000);
            assert_eq!(j.config, p[j.app].config.id);
        }
    }

    #[test]
    fn mix_weights_shape_the_stream() {
        let p = profiles();
        let jobs = spec(400).generate(&p);
        let a_count = jobs.iter().filter(|j| j.app == 0).count();
        // 3:1 mix → roughly 300 of 400; allow generous slack.
        assert!((250..=350).contains(&a_count), "a_count = {a_count}");
    }

    #[test]
    fn uniform_targets_fpga_load() {
        let p = profiles();
        let spec = WorkloadSpec::uniform(7, 10, &p, 110);
        // mean fine = (1000 + 10000) / 2 = 5500 → 5500 * 100 / 110 = 5000.
        assert_eq!(spec.mean_interarrival, 5_000);
        assert_eq!(spec.mix.len(), 2);
    }

    #[test]
    fn streaming_yields_the_identical_sequence() {
        let p = profiles();
        let s = spec(128);
        let batch = s.generate(&p);
        let streamed: Vec<Job> = s.generate_streaming(&p).collect();
        assert_eq!(batch, streamed);
        assert_eq!(s.generate_streaming(&p).len(), 128);
    }

    #[test]
    #[should_panic(expected = "mix references app")]
    fn out_of_range_mix_panics() {
        let p = profiles();
        let mut s = spec(4);
        s.mix[0].app = 9;
        s.generate(&p);
    }
}
