//! Per-application runtime profiles: what one job of an application
//! costs on each half of the hybrid platform, and which fine-grain
//! configuration it needs resident.
//!
//! A profile is derived from the *static* methodology's outputs — the
//! engine's [`PartitionResult`] prices one execution (eq. (2)) and the
//! fine-grain mapping's temporal partitions describe the bitstream set
//! the FPGA-resident blocks occupy — so the simulator replays exactly
//! the partitioning the paper's flow chose, under contention.

use amdrel_core::{Assignment, PartitionResult};
use amdrel_finegrain::CdfgFineGrainMapping;
use serde::{Deserialize, Serialize};

/// Identity of a fine-grain configuration (one application's bitstream
/// set). The configuration cache compares these: equal ids re-enter the
/// fabric for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConfigId(pub u64);

/// The fine-grain configuration an application keeps resident while its
/// jobs execute: one area entry per temporal partition, in load order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Cache identity.
    pub id: ConfigId,
    /// Partition areas in load order (the per-bitstream granularity).
    pub partition_areas: Vec<u64>,
}

impl FabricConfig {
    /// Build a configuration, deriving the [`ConfigId`] from a stable
    /// FNV-1a hash of the name and the partition areas (no process-seeded
    /// hasher, so ids are bit-identical across runs and machines).
    pub fn new(name: &str, partition_areas: Vec<u64>) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in name.bytes() {
            eat(b);
        }
        for a in &partition_areas {
            for b in a.to_le_bytes() {
                eat(b);
            }
        }
        FabricConfig {
            id: ConfigId(h),
            partition_areas,
        }
    }

    /// Total configuration data: the sum of the partition areas.
    pub fn total_area(&self) -> u64 {
        self.partition_areas.iter().sum()
    }

    /// Number of bitstreams in the set.
    pub fn partitions(&self) -> usize {
        self.partition_areas.len()
    }
}

/// The runtime cost profile of one application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (reporting key).
    pub name: String,
    /// Scheduling priority for the priority policy (higher is more
    /// urgent).
    pub priority: u8,
    /// Fine-grain FPGA cycles per job (eq. (4) over the blocks left on
    /// the fine-grain hardware).
    pub fine_cycles: u64,
    /// Coarse-grain cycles per job, already converted to FPGA cycles
    /// (eq. (3) / clock ratio).
    pub coarse_cycles: u64,
    /// Shared-memory communication cycles per job.
    pub comm_cycles: u64,
    /// The fine-grain configuration the job's FPGA phase needs loaded.
    pub config: FabricConfig,
}

/// Cost multiplier for fine-grain work emulated on the coarse-grain
/// datapath when a job degrades to its fallback path (the fabric's
/// bit-level parallelism is lost, so each residual FPGA cycle is priced
/// at this many CGC cycles).
pub const FALLBACK_FINE_PENALTY: u64 = 4;

impl AppProfile {
    /// Total service demand of one job, ignoring reconfiguration and
    /// queueing (the shortest-job-first ranking key).
    pub fn service_cycles(&self) -> u64 {
        self.fine_cycles + self.coarse_cycles + self.comm_cycles
    }

    /// Cycles one job takes on the **coarse-grain-only fallback path** —
    /// the graceful-degradation route a job whose fabric retries are
    /// exhausted is re-priced onto. Derived from the same per-budget
    /// [`Breakdown`](amdrel_core::Breakdown) phase split the profile
    /// carries (eq. (2)): the coarse and communication phases run as
    /// priced, and the residual fine-grain phase is emulated on the
    /// coarse datapath at [`FALLBACK_FINE_PENALTY`]× its FPGA cost.
    pub fn fallback_cycles(&self) -> u64 {
        self.coarse_cycles
            .saturating_add(self.comm_cycles)
            .saturating_add(self.fine_cycles.saturating_mul(FALLBACK_FINE_PENALTY))
    }

    /// Derive a profile from the static flow's outputs: the engine's
    /// [`PartitionResult`] prices the phases, and the fine-grain
    /// `mapping`'s temporal partitions of the blocks the engine left on
    /// the FPGA form the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `result.assignment` and `mapping.blocks` disagree on
    /// the block count (the result and mapping must come from the same
    /// CDFG).
    pub fn from_partitioning(
        name: &str,
        priority: u8,
        result: &PartitionResult,
        mapping: &CdfgFineGrainMapping,
    ) -> Self {
        assert_eq!(
            result.assignment.len(),
            mapping.blocks.len(),
            "partition result and fine-grain mapping disagree on block count"
        );
        let areas = mapping.partition_areas(|i| result.assignment[i] == Assignment::FineGrain);
        AppProfile {
            name: name.to_owned(),
            priority,
            fine_cycles: result.breakdown.t_fpga,
            coarse_cycles: result.breakdown.t_coarse,
            comm_cycles: result.breakdown.t_comm,
            config: FabricConfig::new(name, areas),
        }
    }

    /// A hand-built profile for tests and synthetic workloads.
    pub fn synthetic(
        name: &str,
        priority: u8,
        fine_cycles: u64,
        coarse_cycles: u64,
        partition_areas: Vec<u64>,
    ) -> Self {
        AppProfile {
            name: name.to_owned(),
            priority,
            fine_cycles,
            coarse_cycles,
            comm_cycles: 0,
            config: FabricConfig::new(name, partition_areas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_ids_are_stable_and_distinct() {
        let a = FabricConfig::new("ofdm", vec![100, 200]);
        let b = FabricConfig::new("ofdm", vec![100, 200]);
        let c = FabricConfig::new("jpeg", vec![100, 200]);
        let d = FabricConfig::new("ofdm", vec![200, 100]);
        assert_eq!(a.id, b.id);
        assert_ne!(a.id, c.id);
        assert_ne!(a.id, d.id, "load order is part of the identity");
        assert_eq!(a.total_area(), 300);
        assert_eq!(a.partitions(), 2);
    }

    #[test]
    fn service_cycles_sum_phases() {
        let mut p = AppProfile::synthetic("x", 1, 100, 30, vec![50]);
        p.comm_cycles = 7;
        assert_eq!(p.service_cycles(), 137);
    }

    #[test]
    fn fallback_reprices_the_fine_phase_onto_the_coarse_path() {
        let mut p = AppProfile::synthetic("x", 1, 100, 30, vec![50]);
        p.comm_cycles = 7;
        assert_eq!(p.fallback_cycles(), 30 + 7 + 4 * 100);
        assert!(p.fallback_cycles() > p.service_cycles());
        let coarse_only = AppProfile::synthetic("y", 0, 0, 500, vec![]);
        assert_eq!(
            coarse_only.fallback_cycles(),
            coarse_only.service_cycles(),
            "no fine phase, no penalty"
        );
        let huge = AppProfile::synthetic("z", 0, u64::MAX, u64::MAX, vec![]);
        assert_eq!(huge.fallback_cycles(), u64::MAX, "saturates, no overflow");
    }
}
