//! Simulation results: per-application latency distributions, resource
//! utilization, and reconfiguration accounting, with a text table and a
//! JSON rendering through the workspace's shared
//! [`amdrel_core::json`] writer.

use crate::calendar::CalendarStats;
use crate::fault::{FaultSpec, RecoveryPolicy};
use crate::sim::SimConfig;
use crate::sketch::{LatencySketch, LatencySource};
use amdrel_core::json::escape;
use amdrel_core::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Nearest-rank percentile of a latency sample (`q` in percent).
/// Returns 0 for an empty sample.
fn percentile(sorted: &[u64], q: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (q * n).div_ceil(100).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Per-application outcome counters and latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppStats {
    /// Application name.
    pub name: String,
    /// Jobs that arrived (admitted or not).
    pub arrived: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs refused admission by the queue bound.
    pub rejected: u64,
    /// Median completion latency (arrival → completion), FPGA cycles.
    pub p50_latency: u64,
    /// 95th-percentile latency.
    pub p95_latency: u64,
    /// Worst observed latency.
    pub max_latency: u64,
}

impl AppStats {
    /// Build the stats from raw completion latencies (consumed; order
    /// irrelevant).
    pub fn from_latencies(
        name: &str,
        arrived: u64,
        completed: u64,
        rejected: u64,
        mut latencies: Vec<u64>,
    ) -> Self {
        latencies.sort_unstable();
        AppStats {
            name: name.to_owned(),
            arrived,
            completed,
            rejected,
            p50_latency: percentile(&latencies, 50),
            p95_latency: percentile(&latencies, 95),
            max_latency: latencies.last().copied().unwrap_or(0),
        }
    }

    /// Build the stats from a streaming [`LatencySketch`] (what the
    /// simulator records into). With an exact-representation sketch this
    /// is identical to [`AppStats::from_latencies`] on the same sample.
    pub fn from_sketch(
        name: &str,
        arrived: u64,
        completed: u64,
        rejected: u64,
        sketch: &LatencySketch,
    ) -> Self {
        AppStats {
            name: name.to_owned(),
            arrived,
            completed,
            rejected,
            p50_latency: sketch.percentile(50),
            p95_latency: sketch.percentile(95),
            max_latency: sketch.max(),
        }
    }
}

/// Reliability accounting for one run: what the fault layer injected
/// and what the recovery policy did about it. All-zero (the `Default`)
/// on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Total faults injected (`load_failures + fabric_kills +
    /// slot_outages`).
    pub injected: u64,
    /// Bitstream-load attempts that failed.
    pub load_failures: u64,
    /// Fine-grain phases killed by transient fabric faults.
    pub fabric_kills: u64,
    /// Coarse-grain phases killed by CGC slot outages.
    pub slot_outages: u64,
    /// Retry attempts the recovery policy issued (fabric and slot).
    pub retries: u64,
    /// Jobs completed on the coarse-grain-only fallback path.
    pub degraded: u64,
    /// Jobs dropped after exhausting their retry budget (degradation
    /// off, or no CGC to fall back to).
    pub aborted: u64,
    /// Jobs reaped while still queued at their deadline.
    pub deadline_misses: u64,
    /// Cycles of work destroyed by faults (failed-load stalls plus
    /// partially-executed killed phases).
    pub fault_lost_cycles: u64,
    /// CGC slot-cycles lost to outage repair windows.
    pub slot_downtime_cycles: u64,
    /// Completions that never saw a fault.
    pub clean_completed: u64,
    /// Completions that recovered from at least one fault (degraded
    /// included).
    pub faulted_completed: u64,
    /// 95th-percentile latency over fault-free completions only.
    pub p95_clean: u64,
    /// 95th-percentile latency over fault-touched completions only (0
    /// when none).
    pub p95_faulted: u64,
}

/// The complete outcome of one simulation run. All fields are integers
/// or strings, so two runs over identical inputs compare bit-equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// The scheduling policy's name.
    pub policy: String,
    /// The runtime knobs the run used.
    pub config: SimConfig,
    /// CGC slot count of the simulated platform.
    pub cgc_slots: usize,
    /// Completion time of the last job (0 if nothing completed).
    pub makespan: u64,
    /// Fabric cycles spent executing fine-grain phases.
    pub fpga_busy_cycles: u64,
    /// Fabric cycles stalled streaming bitstreams in.
    pub reconfig_stall_cycles: u64,
    /// Bitstream loads performed (prefetched loads included).
    pub reconfig_loads: u64,
    /// CGC slot-cycles spent on coarse phases (incl. communication).
    pub cgc_busy_cycles: u64,
    /// Median completion latency across *all* completed jobs.
    pub p50_latency: u64,
    /// 95th-percentile latency across all completed jobs — the figure
    /// the policy comparisons use.
    pub p95_latency: u64,
    /// Whether latency percentiles are exact nearest-rank values or
    /// streaming-sketch upper bounds (within `2^-7` relative).
    pub latency_source: LatencySource,
    /// The fault-injection spec the run used ([`FaultSpec::none`] when
    /// faults were off).
    pub faults: FaultSpec,
    /// The recovery policy the run used (behaviour-neutral metadata
    /// while `faults` is inert).
    pub recovery: RecoveryPolicy,
    /// Calendar-queue internals for the run (all-zero from sources with
    /// no calendar, e.g. hand-built reports).
    pub queue: CalendarStats,
    /// What the fault layer injected and the recovery layer salvaged.
    pub reliability: ReliabilityStats,
    /// Per-application breakdown, in profile order.
    pub apps: Vec<AppStats>,
}

impl RuntimeReport {
    /// Total jobs that arrived across all applications.
    pub fn arrived(&self) -> u64 {
        self.apps.iter().map(|a| a.arrived).sum()
    }

    /// Total jobs completed.
    pub fn completed(&self) -> u64 {
        self.apps.iter().map(|a| a.completed).sum()
    }

    /// Total jobs rejected by the admission bound.
    pub fn rejected(&self) -> u64 {
        self.apps.iter().map(|a| a.rejected).sum()
    }

    /// Worst per-application 95th-percentile latency (the fairness
    /// counterpart to the aggregate [`RuntimeReport::p95_latency`]).
    pub fn worst_p95_latency(&self) -> u64 {
        self.apps.iter().map(|a| a.p95_latency).max().unwrap_or(0)
    }

    /// Fraction of the makespan the fabric was occupied (executing or
    /// reconfiguring).
    pub fn fpga_utilization(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        (self.fpga_busy_cycles + self.reconfig_stall_cycles) as f64 / self.makespan as f64
    }

    /// Fraction of total CGC slot-cycles spent busy.
    pub fn cgc_utilization(&self) -> f64 {
        if self.makespan == 0 || self.cgc_slots == 0 {
            return 0.0;
        }
        self.cgc_busy_cycles as f64 / (self.makespan * self.cgc_slots as u64) as f64
    }

    /// Share of fabric occupancy lost to reconfiguration stalls.
    pub fn stall_share(&self) -> f64 {
        let occupied = self.fpga_busy_cycles + self.reconfig_stall_cycles;
        if occupied == 0 {
            return 0.0;
        }
        self.reconfig_stall_cycles as f64 / occupied as f64
    }

    /// Sustained throughput: completed jobs per million FPGA cycles.
    pub fn jobs_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed() as f64 * 1_000_000.0 / self.makespan as f64
    }

    /// Fraction of the platform's cycle capacity over the makespan that
    /// was *not* destroyed by faults or outage repair windows. Capacity
    /// counts the fabric plus every CGC slot; a fault-free run has
    /// availability exactly 1.0, and any run stays in `(0, 1]`.
    pub fn availability(&self) -> f64 {
        let capacity = self.makespan.saturating_mul(1 + self.cgc_slots as u64);
        if capacity == 0 {
            return 1.0;
        }
        let lost = self
            .reliability
            .fault_lost_cycles
            .saturating_add(self.reliability.slot_downtime_cycles)
            .min(capacity);
        (capacity - lost) as f64 / capacity as f64
    }

    /// Goodput: *delivered results* per million cycles — every
    /// completion counts, degraded-path ones included. Always ≤
    /// [`RuntimeReport::throughput_jobs_per_mcycle`].
    pub fn goodput_jobs_per_mcycle(&self) -> f64 {
        self.jobs_per_mcycle()
    }

    /// Raw drain throughput: job *disposals* (completions, aborts and
    /// deadline reaps) per million cycles. The gap to
    /// [`RuntimeReport::goodput_jobs_per_mcycle`] is exactly the jobs
    /// the platform disposed of without delivering a result.
    pub fn throughput_jobs_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let disposed =
            self.completed() + self.reliability.aborted + self.reliability.deadline_misses;
        disposed as f64 * 1_000_000.0 / self.makespan as f64
    }

    /// Flatten the run's counters into a [`MetricsRegistry`] under
    /// dotted-path names (`queue.events`, `faults.injected`,
    /// `recovery.retries`, `sim.reconfig_loads`, …). This is the
    /// `metrics` object of the `--json` report; values are copies of
    /// report fields, so the registry is as deterministic as the report.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.set("sim.makespan", self.makespan);
        m.set("sim.arrived", self.arrived());
        m.set("sim.completed", self.completed());
        m.set("sim.rejected", self.rejected());
        m.set("sim.fpga_busy_cycles", self.fpga_busy_cycles);
        m.set("sim.reconfig_stall_cycles", self.reconfig_stall_cycles);
        m.set("sim.reconfig_loads", self.reconfig_loads);
        m.set("sim.cgc_busy_cycles", self.cgc_busy_cycles);
        m.set("queue.events", self.queue.events);
        m.set("queue.rehashes", self.queue.rehashes);
        m.set("queue.peak_occupancy", self.queue.peak_occupancy);
        m.set("queue.day_width", self.queue.day_width);
        m.set("faults.injected", self.reliability.injected);
        m.set("faults.load_failures", self.reliability.load_failures);
        m.set("faults.fabric_kills", self.reliability.fabric_kills);
        m.set("faults.slot_outages", self.reliability.slot_outages);
        m.set("recovery.retries", self.reliability.retries);
        m.set("recovery.degraded", self.reliability.degraded);
        m.set("recovery.aborted", self.reliability.aborted);
        m.set("recovery.deadline_misses", self.reliability.deadline_misses);
        m
    }

    /// Human-readable summary table.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "policy {} (cache {}, prefetch {}, queue bound {}, {} percentiles)",
            self.policy,
            if self.config.config_cache {
                "on"
            } else {
                "off"
            },
            if self.config.prefetch { "on" } else { "off" },
            match self.config.queue_bound {
                Some(bound) => bound.to_string(),
                None => "unbounded".to_owned(),
            },
            self.latency_source.as_str(),
        );
        let _ = writeln!(
            out,
            "{} arrived, {} completed, {} rejected over {} cycles ({:.2} jobs/Mcycle, p50 {} / p95 {})",
            self.arrived(),
            self.completed(),
            self.rejected(),
            self.makespan,
            self.jobs_per_mcycle(),
            self.p50_latency,
            self.p95_latency,
        );
        let _ = writeln!(
            out,
            "fpga util {:.1}%  cgc util {:.1}% ({} slots)  reconfig {} loads, {} stall cycles ({:.1}% of fabric time)",
            self.fpga_utilization() * 100.0,
            self.cgc_utilization() * 100.0,
            self.cgc_slots,
            self.reconfig_loads,
            self.reconfig_stall_cycles,
            self.stall_share() * 100.0,
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
            "app", "arrived", "done", "rejected", "p50 latency", "p95 latency", "max latency"
        );
        for a in &self.apps {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
                a.name,
                a.arrived,
                a.completed,
                a.rejected,
                a.p50_latency,
                a.p95_latency,
                a.max_latency
            );
        }
        if !self.faults.is_none() {
            let r = &self.reliability;
            let _ = writeln!(
                out,
                "faults: {} injected ({} load, {} fabric, {} outage), {} retries, \
                 {} degraded, {} aborted, {} deadline misses",
                r.injected,
                r.load_failures,
                r.fabric_kills,
                r.slot_outages,
                r.retries,
                r.degraded,
                r.aborted,
                r.deadline_misses,
            );
            let _ = writeln!(
                out,
                "availability {:.4}  goodput {:.2} / throughput {:.2} jobs/Mcycle  \
                 p95 clean {} / faulted {}",
                self.availability(),
                self.goodput_jobs_per_mcycle(),
                self.throughput_jobs_per_mcycle(),
                r.p95_clean,
                r.p95_faulted,
            );
        }
        out
    }
}

/// Render a [`RuntimeReport`] as deterministic JSON
/// (schema `amdrel-simulate/v4`).
///
/// v4 additions over v3: the `queue` object (calendar-queue internals:
/// events scheduled, rehashes, peak occupancy, day width) and the
/// `metrics` object (the [`RuntimeReport::metrics`] registry, flat
/// dotted-path counters). Every v3 key is retained unchanged. Earlier
/// history: v3 added `faults`, `recovery` and `reliability`; v2 added
/// the `latency_source` provenance field in `totals`; `queue_bound`
/// keeps the v1 convention of `0` meaning unbounded.
pub fn report_to_json(report: &RuntimeReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"amdrel-simulate/v4\",\n");
    let _ = writeln!(out, "  \"policy\": \"{}\",", escape(&report.policy));
    let _ = writeln!(
        out,
        "  \"config\": {{\"config_cache\": {}, \"prefetch\": {}, \"queue_bound\": {}}},",
        report.config.config_cache,
        report.config.prefetch,
        report.config.queue_bound.map_or(0, |bound| bound.get())
    );
    let _ = writeln!(
        out,
        "  \"totals\": {{\"arrived\": {}, \"completed\": {}, \"rejected\": {}, \"makespan\": {}, \
         \"jobs_per_mcycle\": {:.4}, \"p50_latency\": {}, \"p95_latency\": {}, \
         \"latency_source\": \"{}\"}},",
        report.arrived(),
        report.completed(),
        report.rejected(),
        report.makespan,
        report.jobs_per_mcycle(),
        report.p50_latency,
        report.p95_latency,
        report.latency_source.as_str()
    );
    let _ = writeln!(
        out,
        "  \"fabric\": {{\"fpga_busy_cycles\": {}, \"reconfig_stall_cycles\": {}, \
         \"reconfig_loads\": {}, \"fpga_utilization\": {:.4}, \"stall_share\": {:.4}}},",
        report.fpga_busy_cycles,
        report.reconfig_stall_cycles,
        report.reconfig_loads,
        report.fpga_utilization(),
        report.stall_share()
    );
    let _ = writeln!(
        out,
        "  \"cgc\": {{\"slots\": {}, \"busy_slot_cycles\": {}, \"utilization\": {:.4}}},",
        report.cgc_slots,
        report.cgc_busy_cycles,
        report.cgc_utilization()
    );
    let _ = writeln!(
        out,
        "  \"faults\": {{\"seed\": {}, \"load_fail_permille\": {}, \"transient_permille\": {}, \
         \"outage_permille\": {}, \"repair_cycles\": {}, \"deadline\": {}}},",
        report.faults.seed,
        report.faults.load_fail_permille,
        report.faults.transient_permille,
        report.faults.outage_permille,
        report.faults.repair_cycles,
        report.faults.deadline.map_or(0, |d| d.get())
    );
    let _ = writeln!(
        out,
        "  \"recovery\": {{\"max_retries\": {}, \"backoff_base_cycles\": {}, \
         \"backoff_cap_cycles\": {}, \"degrade\": {}}},",
        report.recovery.max_retries,
        report.recovery.backoff.base_cycles,
        report.recovery.backoff.cap_cycles,
        report.recovery.degrade
    );
    let _ = writeln!(
        out,
        "  \"queue\": {{\"events\": {}, \"rehashes\": {}, \"peak_occupancy\": {}, \
         \"day_width\": {}}},",
        report.queue.events,
        report.queue.rehashes,
        report.queue.peak_occupancy,
        report.queue.day_width
    );
    let r = &report.reliability;
    let _ = writeln!(
        out,
        "  \"reliability\": {{\"injected\": {}, \"load_failures\": {}, \"fabric_kills\": {}, \
         \"slot_outages\": {}, \"retries\": {}, \"degraded\": {}, \"aborted\": {}, \
         \"deadline_misses\": {}, \"fault_lost_cycles\": {}, \"slot_downtime_cycles\": {}, \
         \"clean_completed\": {}, \"faulted_completed\": {}, \"p95_clean\": {}, \
         \"p95_faulted\": {}, \"availability\": {:.4}, \"goodput_jobs_per_mcycle\": {:.4}, \
         \"throughput_jobs_per_mcycle\": {:.4}}},",
        r.injected,
        r.load_failures,
        r.fabric_kills,
        r.slot_outages,
        r.retries,
        r.degraded,
        r.aborted,
        r.deadline_misses,
        r.fault_lost_cycles,
        r.slot_downtime_cycles,
        r.clean_completed,
        r.faulted_completed,
        r.p95_clean,
        r.p95_faulted,
        report.availability(),
        report.goodput_jobs_per_mcycle(),
        report.throughput_jobs_per_mcycle()
    );
    let _ = writeln!(out, "  \"metrics\": {},", report.metrics().to_json());
    out.push_str("  \"apps\": [\n");
    for (i, a) in report.apps.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\":\"{}\",\"arrived\":{},\"completed\":{},\"rejected\":{},\
             \"p50_latency\":{},\"p95_latency\":{},\"max_latency\":{}}}",
            escape(&a.name),
            a.arrived,
            a.completed,
            a.rejected,
            a.p50_latency,
            a.p95_latency,
            a.max_latency,
        );
        out.push_str(if i + 1 == report.apps.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50), 50);
        assert_eq!(percentile(&s, 95), 100);
        assert_eq!(percentile(&s, 100), 100);
        assert_eq!(percentile(&s, 1), 10);
        assert_eq!(percentile(&[], 95), 0);
        assert_eq!(percentile(&[7], 50), 7);
    }

    #[test]
    fn app_stats_sort_before_ranking() {
        let a = AppStats::from_latencies("x", 5, 3, 2, vec![30, 10, 20]);
        assert_eq!(a.p50_latency, 20);
        assert_eq!(a.max_latency, 30);
    }

    fn toy_report() -> RuntimeReport {
        RuntimeReport {
            policy: "fcfs".to_owned(),
            config: SimConfig::default(),
            cgc_slots: 2,
            makespan: 1_000,
            fpga_busy_cycles: 600,
            reconfig_stall_cycles: 200,
            reconfig_loads: 4,
            cgc_busy_cycles: 500,
            p50_latency: 5,
            p95_latency: 5,
            latency_source: LatencySource::Exact,
            faults: FaultSpec::none(),
            recovery: RecoveryPolicy::default(),
            queue: CalendarStats::default(),
            reliability: ReliabilityStats::default(),
            apps: vec![AppStats::from_latencies("a", 10, 8, 2, vec![5; 8])],
        }
    }

    #[test]
    fn ratios() {
        let r = toy_report();
        assert!((r.fpga_utilization() - 0.8).abs() < 1e-12);
        assert!((r.cgc_utilization() - 0.25).abs() < 1e-12);
        assert!((r.stall_share() - 0.25).abs() < 1e-12);
        assert!((r.jobs_per_mcycle() - 8_000.0).abs() < 1e-9);
        assert_eq!(r.worst_p95_latency(), 5);
    }

    #[test]
    fn reliability_metrics_on_a_clean_run() {
        let r = toy_report();
        assert_eq!(r.availability(), 1.0, "nothing lost, fully available");
        assert_eq!(r.goodput_jobs_per_mcycle(), r.jobs_per_mcycle());
        assert_eq!(
            r.throughput_jobs_per_mcycle(),
            r.goodput_jobs_per_mcycle(),
            "no aborts or reaps: the two rates coincide"
        );
    }

    #[test]
    fn reliability_metrics_under_faults() {
        let mut r = toy_report();
        r.faults = FaultSpec::uniform(7, 100);
        // Capacity = 1000 * (1 fabric + 2 slots) = 3000; lose 600.
        r.reliability.fault_lost_cycles = 400;
        r.reliability.slot_downtime_cycles = 200;
        r.reliability.aborted = 1;
        r.reliability.deadline_misses = 1;
        assert!((r.availability() - 0.8).abs() < 1e-12);
        // 8 completed vs 10 disposed over 1000 cycles.
        assert!((r.goodput_jobs_per_mcycle() - 8_000.0).abs() < 1e-9);
        assert!((r.throughput_jobs_per_mcycle() - 10_000.0).abs() < 1e-9);
        assert!(r.goodput_jobs_per_mcycle() <= r.throughput_jobs_per_mcycle());
        // Losses beyond capacity clamp instead of going negative.
        r.reliability.fault_lost_cycles = u64::MAX;
        assert_eq!(r.availability(), 0.0);
        let mut empty = toy_report();
        empty.makespan = 0;
        assert_eq!(empty.availability(), 1.0, "zero capacity is vacuously up");
    }

    #[test]
    fn json_and_table_shapes() {
        let r = toy_report();
        let json = report_to_json(&r);
        assert!(json.contains("\"schema\": \"amdrel-simulate/v4\""));
        assert!(json.contains("\"apps\""));
        assert!(json.contains("\"queue\""));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"queue.events\": 0"));
        assert!(json.contains("\"sim.makespan\": 1000"));
        assert!(json.contains("\"p95_latency\":5"));
        assert!(json.contains("\"latency_source\": \"exact\""));
        assert!(json.contains("\"queue_bound\": 0"), "None renders as 0");
        assert!(json.contains("\"faults\""));
        assert!(json.contains("\"recovery\""));
        assert!(json.contains("\"reliability\""));
        assert!(json.contains("\"availability\": 1.0000"));
        assert!(json.contains("\"deadline\": 0"), "None renders as 0");
        let table = r.format_table();
        assert!(table.contains("policy fcfs"));
        assert!(table.contains("queue bound unbounded"));
        assert!(table.contains("p95 latency"));
        assert!(
            !table.contains("availability"),
            "inert spec keeps the table fault-silent"
        );
        let mut faulted = r.clone();
        faulted.faults = FaultSpec::uniform(7, 100);
        faulted.reliability.injected = 3;
        let table = faulted.format_table();
        assert!(table.contains("3 injected"));
        assert!(table.contains("availability"));
    }

    #[test]
    fn sketch_backed_stats_match_buffered_stats_exactly() {
        let sample = vec![40u64, 10, 77, 3, 3, 99, 18];
        let mut sketch = LatencySketch::new(LatencySource::Exact);
        sample.iter().for_each(|&v| sketch.record(v));
        assert_eq!(
            AppStats::from_sketch("x", 9, 7, 2, &sketch),
            AppStats::from_latencies("x", 9, 7, 2, sample)
        );
    }
}
