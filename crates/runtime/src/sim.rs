//! The deterministic discrete-event simulator.
//!
//! Two resources model the hybrid platform at runtime:
//!
//! * the **fine-grain fabric** — one exclusive server. A job's FPGA
//!   phase needs its application's configuration resident; dispatching a
//!   job whose configuration differs from the loaded one charges
//!   reconfiguration stall cycles priced by the platform's
//!   [`ReconfigModel`](amdrel_core::ReconfigModel) per temporal
//!   partition (the configuration cache makes re-entry of the loaded
//!   configuration free; prefetch overlaps all but the first partition
//!   load with execution);
//! * the **CGC datapath** — one slot per CGC. A job's coarse phase
//!   (CGC compute + shared-memory communication) occupies one slot,
//!   FIFO, overlapping other jobs' FPGA phases.
//!
//! Every event is ordered by `(time, sequence number)` — a total,
//! seed-independent order — so identical inputs replay bit-for-bit. The
//! simulator itself consumes no randomness; all stochasticity lives in
//! the seeded [`WorkloadSpec`](crate::WorkloadSpec) generator.

use crate::policy::SchedulePolicy;
use crate::profile::{AppProfile, ConfigId};
use crate::report::{AppStats, RuntimeReport};
use crate::workload::Job;
use amdrel_core::Platform;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Runtime knobs orthogonal to the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// When `true` (default), a job whose configuration is already
    /// loaded re-enters the fabric with no reconfiguration charge. When
    /// `false`, every dispatch streams the full bitstream set in.
    pub config_cache: bool,
    /// When `true`, partition loads after the first overlap with
    /// execution of the preceding partition (only the first bitstream
    /// stalls the fabric). Default `false`.
    pub prefetch: bool,
    /// Admission bound: a job arriving while this many jobs already wait
    /// for the fabric is rejected. `0` means unbounded (no rejection).
    pub queue_bound: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            config_cache: true,
            prefetch: false,
            queue_bound: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival(usize),
    FpgaDone(Job),
    CgcDone(Job),
}

/// Heap entry: ordered by `(time, seq)` via the derived tuple order on
/// `Reverse`, giving a total, deterministic processing order. `seq` is
/// unique per event, so the `EventKind` ordering is never actually
/// consulted — it is derived only to keep `Ord` consistent with `Eq`.
type Event = Reverse<(u64, u64, EventKind)>;

struct SimState<'a> {
    profiles: &'a [AppProfile],
    jobs: &'a [Job],
    platform: &'a Platform,
    policy: &'a dyn SchedulePolicy,
    config: SimConfig,

    heap: BinaryHeap<Event>,
    next_seq: u64,

    fpga_queue: Vec<Job>,
    fpga_busy: bool,
    loaded: Option<ConfigId>,

    cgc_queue: VecDeque<Job>,
    free_slots: usize,

    // Accounting.
    arrived: Vec<u64>,
    rejected: Vec<u64>,
    completed: Vec<u64>,
    latencies: Vec<Vec<u64>>,
    fpga_busy_cycles: u64,
    reconfig_stall_cycles: u64,
    reconfig_loads: u64,
    cgc_busy_cycles: u64,
    makespan: u64,
}

impl SimState<'_> {
    fn push(&mut self, time: u64, kind: EventKind) {
        self.heap.push(Reverse((time, self.next_seq, kind)));
        self.next_seq += 1;
    }

    /// Reconfiguration charge for dispatching `job` now: `(bitstream
    /// loads performed, fabric stall cycles)`.
    fn reconfig_charge(&self, job: &Job) -> (u64, u64) {
        let areas = &self.profiles[job.app].config.partition_areas;
        if areas.is_empty() || (self.config.config_cache && self.loaded == Some(job.config)) {
            return (0, 0);
        }
        let model = &self.platform.reconfig;
        let stall = if self.config.prefetch {
            model.load_cycles(areas[0])
        } else {
            areas.iter().map(|&a| model.load_cycles(a)).sum()
        };
        (areas.len() as u64, stall)
    }

    fn dispatch_fpga(&mut self, now: u64) {
        if self.fpga_busy || self.fpga_queue.is_empty() {
            return;
        }
        let pick = self.policy.pick(&self.fpga_queue, self.loaded);
        let job = self.fpga_queue.swap_remove(pick);
        let (loads, stall) = self.reconfig_charge(&job);
        if loads > 0 {
            self.loaded = Some(job.config);
        }
        self.reconfig_loads += loads;
        self.reconfig_stall_cycles += stall;
        self.fpga_busy_cycles += job.fine_cycles;
        self.fpga_busy = true;
        self.push(now + stall + job.fine_cycles, EventKind::FpgaDone(job));
    }

    fn dispatch_cgc(&mut self, now: u64) {
        while self.free_slots > 0 {
            let Some(job) = self.cgc_queue.pop_front() else {
                return;
            };
            self.free_slots -= 1;
            self.cgc_busy_cycles += job.coarse_cycles;
            self.push(now + job.coarse_cycles, EventKind::CgcDone(job));
        }
    }

    fn complete(&mut self, job: &Job, now: u64) {
        self.completed[job.app] += 1;
        self.latencies[job.app].push(now - job.arrival);
        self.makespan = self.makespan.max(now);
    }

    fn run(mut self) -> RuntimeReport {
        while let Some(Reverse((now, _, kind))) = self.heap.pop() {
            match kind {
                EventKind::Arrival(job_idx) => {
                    let job = self.jobs[job_idx];
                    self.arrived[job.app] += 1;
                    if self.config.queue_bound > 0
                        && self.fpga_queue.len() >= self.config.queue_bound
                    {
                        self.rejected[job.app] += 1;
                    } else {
                        self.fpga_queue.push(job);
                        self.dispatch_fpga(now);
                    }
                }
                EventKind::FpgaDone(job) => {
                    self.fpga_busy = false;
                    if job.coarse_cycles > 0 {
                        self.cgc_queue.push_back(job);
                        self.dispatch_cgc(now);
                    } else {
                        self.complete(&job, now);
                    }
                    self.dispatch_fpga(now);
                }
                EventKind::CgcDone(job) => {
                    self.free_slots += 1;
                    self.complete(&job, now);
                    self.dispatch_cgc(now);
                }
            }
        }

        let (p50, p95) = RuntimeReport::aggregate_percentiles(
            self.latencies.iter().flatten().copied().collect(),
        );
        let apps: Vec<AppStats> = self
            .profiles
            .iter()
            .enumerate()
            .map(|(a, p)| {
                AppStats::from_latencies(
                    &p.name,
                    self.arrived[a],
                    self.completed[a],
                    self.rejected[a],
                    std::mem::take(&mut self.latencies[a]),
                )
            })
            .collect();

        RuntimeReport {
            policy: self.policy.name().to_owned(),
            config: self.config,
            cgc_slots: self.platform.datapath.cgcs.len(),
            makespan: self.makespan,
            fpga_busy_cycles: self.fpga_busy_cycles,
            reconfig_stall_cycles: self.reconfig_stall_cycles,
            reconfig_loads: self.reconfig_loads,
            cgc_busy_cycles: self.cgc_busy_cycles,
            p50_latency: p50,
            p95_latency: p95,
            apps,
        }
    }
}

/// Play `jobs` (from [`WorkloadSpec::generate`](crate::WorkloadSpec))
/// against `platform` under `policy`.
///
/// Identical inputs produce bit-identical [`RuntimeReport`]s: the event
/// order is total (`(time, sequence)`), the policies are deterministic,
/// and the simulator draws no randomness.
///
/// # Panics
///
/// Panics if a job's `app` index is out of range for `profiles`, or if
/// the platform has no CGCs while a job carries coarse-grain work.
pub fn run_simulation(
    profiles: &[AppProfile],
    jobs: &[Job],
    platform: &Platform,
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> RuntimeReport {
    for job in jobs {
        assert!(
            job.app < profiles.len(),
            "job {} references app {} but only {} profiles given",
            job.id,
            job.app,
            profiles.len()
        );
        assert!(
            job.coarse_cycles == 0 || !platform.datapath.cgcs.is_empty(),
            "coarse-grain work needs at least one CGC"
        );
    }
    let mut state = SimState {
        profiles,
        jobs,
        platform,
        policy,
        config: *config,
        heap: BinaryHeap::with_capacity(jobs.len() * 2),
        next_seq: 0,
        fpga_queue: Vec::new(),
        fpga_busy: false,
        loaded: None,
        cgc_queue: VecDeque::new(),
        free_slots: platform.datapath.cgcs.len(),
        arrived: vec![0; profiles.len()],
        rejected: vec![0; profiles.len()],
        completed: vec![0; profiles.len()],
        latencies: vec![Vec::new(); profiles.len()],
        fpga_busy_cycles: 0,
        reconfig_stall_cycles: 0,
        reconfig_loads: 0,
        cgc_busy_cycles: 0,
        makespan: 0,
    };
    for (idx, job) in jobs.iter().enumerate() {
        state.push(job.arrival, EventKind::Arrival(idx));
    }
    state.run()
}

/// One-shot convenience: generate `spec`'s seeded job stream against
/// `profiles` and play it through [`run_simulation`].
///
/// This is the entry point external scorers use (e.g. the
/// contention-aware objectives in `amdrel-explore`): everything a run
/// needs travels in the arguments, and identical arguments produce a
/// bit-identical [`RuntimeReport`].
///
/// # Panics
///
/// As [`WorkloadSpec::generate`](crate::WorkloadSpec::generate) and
/// [`run_simulation`] (empty mix, out-of-range app indices, coarse work
/// with no CGCs).
///
/// # Examples
///
/// ```
/// use amdrel_core::Platform;
/// use amdrel_runtime::{simulate_mix, AppProfile, Fcfs, SimConfig, WorkloadSpec};
///
/// let profiles = vec![AppProfile::synthetic("app", 0, 5_000, 1_000, vec![400])];
/// let spec = WorkloadSpec::uniform(42, 32, &profiles, 110);
/// let report = simulate_mix(
///     &profiles,
///     &spec,
///     &Platform::paper(1500, 2),
///     &Fcfs,
///     &SimConfig::default(),
/// );
/// assert_eq!(report.arrived(), 32);
/// ```
pub fn simulate_mix(
    profiles: &[crate::AppProfile],
    spec: &crate::WorkloadSpec,
    platform: &Platform,
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> RuntimeReport {
    let jobs = spec.generate(profiles);
    run_simulation(profiles, &jobs, platform, policy, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, ShortestJobFirst};
    use crate::profile::FabricConfig;
    use amdrel_core::ReconfigModel;

    fn profile(name: &str, fine: u64, coarse: u64, areas: Vec<u64>) -> AppProfile {
        AppProfile::synthetic(name, 0, fine, coarse, areas)
    }

    fn job(id: u64, app: usize, arrival: u64, fine: u64, coarse: u64, cfg: &FabricConfig) -> Job {
        Job {
            id,
            app,
            arrival,
            priority: 0,
            fine_cycles: fine,
            coarse_cycles: coarse,
            config: cfg.id,
        }
    }

    fn platform() -> Platform {
        Platform::paper(1500, 2).with_reconfig(ReconfigModel {
            base_cycles: 10,
            cycles_per_area: 1,
        })
    }

    #[test]
    fn single_job_timeline() {
        let p = vec![profile("a", 100, 40, vec![30])];
        let jobs = vec![job(0, 0, 5, 100, 40, &p[0].config)];
        let r = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        // Arrive 5, load 10+30=40, fine 100 → FPGA done 145, coarse 40 → 185.
        assert_eq!(r.makespan, 185);
        assert_eq!(r.reconfig_loads, 1);
        assert_eq!(r.reconfig_stall_cycles, 40);
        assert_eq!(r.apps[0].completed, 1);
        assert_eq!(r.apps[0].max_latency, 180);
    }

    #[test]
    fn config_cache_makes_reentry_free() {
        let p = vec![profile("a", 100, 0, vec![30])];
        let jobs: Vec<Job> = (0..4)
            .map(|i| job(i, 0, i * 10, 100, 0, &p[0].config))
            .collect();
        let cached = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        assert_eq!(cached.reconfig_loads, 1, "first load only");
        assert_eq!(cached.reconfig_stall_cycles, 40);

        let uncached = run_simulation(
            &p,
            &jobs,
            &platform(),
            &Fcfs,
            &SimConfig {
                config_cache: false,
                ..SimConfig::default()
            },
        );
        assert_eq!(uncached.reconfig_loads, 4, "every dispatch reloads");
        assert_eq!(uncached.reconfig_stall_cycles, 160);
        assert!(uncached.makespan > cached.makespan);
    }

    #[test]
    fn alternating_configs_thrash_the_cache() {
        let p = vec![
            profile("a", 100, 0, vec![30]),
            profile("b", 100, 0, vec![50]),
        ];
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let app = (i % 2) as usize;
                job(i, app, i, 100, 0, &p[app].config)
            })
            .collect();
        let r = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        assert_eq!(r.reconfig_loads, 6, "every dispatch swaps configs");
        assert_eq!(r.reconfig_stall_cycles, 3 * 40 + 3 * 60);
    }

    #[test]
    fn prefetch_hides_all_but_the_first_partition() {
        let p = vec![profile("a", 100, 0, vec![30, 30, 30])];
        let jobs = vec![job(0, 0, 0, 100, 0, &p[0].config)];
        let plain = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        assert_eq!(plain.reconfig_stall_cycles, 120);
        let pf = run_simulation(
            &p,
            &jobs,
            &platform(),
            &Fcfs,
            &SimConfig {
                prefetch: true,
                ..SimConfig::default()
            },
        );
        assert_eq!(
            pf.reconfig_stall_cycles, 40,
            "only the first bitstream stalls"
        );
        assert_eq!(pf.reconfig_loads, 3, "loads still happen, overlapped");
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let p = vec![profile("a", 1_000, 0, vec![])];
        // 5 jobs arrive back-to-back; the first occupies the fabric, the
        // bound admits 2 waiters, the rest are rejected.
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(i, 0, i + 1, 1_000, 0, &p[0].config))
            .collect();
        let r = run_simulation(
            &p,
            &jobs,
            &platform(),
            &Fcfs,
            &SimConfig {
                queue_bound: 2,
                ..SimConfig::default()
            },
        );
        assert_eq!(r.apps[0].arrived, 5);
        assert_eq!(r.apps[0].completed, 3);
        assert_eq!(r.apps[0].rejected, 2);
    }

    #[test]
    fn cgc_slots_limit_coarse_parallelism() {
        // Zero fine phase: jobs pass straight to the CGC stage. Two
        // slots, four equal jobs → two waves.
        let p = vec![profile("a", 1, 100, vec![])];
        let jobs: Vec<Job> = (0..4).map(|i| job(i, 0, 0, 1, 100, &p[0].config)).collect();
        let r = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        assert_eq!(r.cgc_slots, 2);
        assert_eq!(r.cgc_busy_cycles, 400);
        // Fine phases serialise, finishing at 1,2,3,4; the first wave
        // holds both slots until 101/102, so the second wave completes
        // at 201 and 202.
        assert_eq!(r.makespan, 202);
    }

    #[test]
    fn sjf_reorders_the_queue() {
        let p = vec![
            profile("long", 1_000, 0, vec![]),
            profile("short", 10, 0, vec![]),
        ];
        // Long job arrives first and seizes the fabric; one more long and
        // two shorts queue behind it.
        let jobs = vec![
            job(0, 0, 0, 1_000, 0, &p[0].config),
            job(1, 0, 1, 1_000, 0, &p[0].config),
            job(2, 1, 2, 10, 0, &p[1].config),
            job(3, 1, 3, 10, 0, &p[1].config),
        ];
        let fcfs = run_simulation(&p, &jobs, &platform(), &Fcfs, &SimConfig::default());
        let sjf = run_simulation(
            &p,
            &jobs,
            &platform(),
            &ShortestJobFirst,
            &SimConfig::default(),
        );
        assert_eq!(fcfs.makespan, sjf.makespan, "work-conserving: same drain");
        assert!(
            sjf.apps[1].max_latency < fcfs.apps[1].max_latency,
            "shorts overtake the queued long job"
        );
    }

    #[test]
    fn empty_workload_is_a_quiet_report() {
        let p = vec![profile("a", 10, 0, vec![5])];
        let r = run_simulation(&p, &[], &platform(), &Fcfs, &SimConfig::default());
        assert_eq!(r.makespan, 0);
        assert_eq!(r.arrived(), 0);
        assert_eq!(r.completed(), 0);
    }
}
