//! The deterministic discrete-event simulator.
//!
//! Two resources model the hybrid platform at runtime:
//!
//! * the **fine-grain fabric** — one exclusive server. A job's FPGA
//!   phase needs its application's configuration resident; dispatching a
//!   job whose configuration differs from the loaded one charges
//!   reconfiguration stall cycles priced by the platform's
//!   [`ReconfigModel`](amdrel_core::ReconfigModel) per temporal
//!   partition (the configuration cache makes re-entry of the loaded
//!   configuration free; prefetch overlaps all but the first partition
//!   load with execution). With a [`RegionPlan`] attached, the scalar
//!   pool becomes per-region configuration state: a dispatch reloads
//!   only the stale regions of the job's residency set, priced by
//!   region area, and load faults scrub only those regions;
//! * the **CGC datapath** — one slot per CGC. A job's coarse phase
//!   (CGC compute + shared-memory communication) occupies one slot,
//!   FIFO, overlapping other jobs' FPGA phases.
//!
//! Every event is ordered by `(time, sequence number)` — a total,
//! seed-independent order — so identical inputs replay bit-for-bit. The
//! simulator itself consumes no randomness; all stochasticity lives in
//! the seeded [`WorkloadSpec`](crate::WorkloadSpec) generator and, when
//! one is attached, the seeded [`FaultSpec`](crate::FaultSpec) whose
//! per-`(channel, job, attempt)` draws are pure functions — fault,
//! repair and deadline events flow through the same calendar queue and
//! the same total order, so faulted runs replay bit-for-bit too, and a
//! zero-rate spec is byte-identical to attaching none.
//!
//! # Engine
//!
//! The event core is a [`CalendarQueue`] (O(1) amortised pop) rather
//! than a binary heap, and it holds **only completion events**: at any
//! instant at most one FPGA phase and `cgc_slots` coarse phases are in
//! flight, so the event structure is O(1) in the job count. Arrivals are
//! merged lazily from the (time-sorted) job stream, with arrivals
//! winning time ties — exactly the order the historical heap produced,
//! where every arrival was pushed before any completion and therefore
//! carried a smaller sequence number. The heap implementation is
//! retained behind `#[cfg(test)]` as a differential oracle.
//!
//! # Entry point
//!
//! [`Simulation`] is the builder facade every consumer routes through —
//! the CLI, `amdrel-explore`'s contention scorer, the case-study crates
//! and the benches. The historical free functions [`run_simulation`] and
//! [`simulate_mix`] remain as thin deprecated shims over it.

use crate::calendar::{CalendarQueue, CalendarStats};
use crate::fault::{permille_of, FaultSpec, RecoveryPolicy};
use crate::policy::{Fcfs, SchedulePolicy};
use crate::profile::{AppProfile, ConfigId};
use crate::region::RegionPlan;
use crate::report::{AppStats, ReliabilityStats, RuntimeReport};
use crate::sketch::{LatencySketch, LatencySource, SketchMode};
use crate::workload::{Job, WorkloadSpec};
use amdrel_core::Platform;
use amdrel_trace::{TraceEvent, TraceSink, TrackId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::num::NonZeroUsize;

/// Runtime knobs orthogonal to the scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// When `true` (default), a job whose configuration is already
    /// loaded re-enters the fabric with no reconfiguration charge. When
    /// `false`, every dispatch streams the full bitstream set in.
    pub config_cache: bool,
    /// When `true`, partition loads after the first overlap with
    /// execution of the preceding partition (only the first bitstream
    /// stalls the fabric). Default `false`.
    pub prefetch: bool,
    /// Admission bound: a job arriving while this many jobs already wait
    /// for the fabric is rejected. `None` means unbounded (no
    /// rejection).
    pub queue_bound: Option<NonZeroUsize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            config_cache: true,
            prefetch: false,
            queue_bound: None,
        }
    }
}

/// One coarse-phase work item in a CGC slot or waiting for one. Plain
/// jobs carry their own `coarse_cycles`; degraded jobs carry the
/// profile's fallback pricing instead and are immune to further faults
/// (the reliable slow path).
#[derive(Debug, Clone, Copy)]
struct CgcTask {
    job: Job,
    /// Slot cycles this execution takes.
    cycles: u64,
    /// Coarse-phase attempt counter (slot-outage retries).
    attempt: u32,
    /// On the coarse-grain-only fallback path (fault-immune).
    degraded: bool,
    /// The job saw at least one fault anywhere on its way here.
    faulted: bool,
}

/// A completion event payload; arrivals never enter the event structure
/// (they are merged lazily from the sorted job stream). Fault, repair
/// and deadline events flow through the same calendar queue and the
/// same `(time, seq)` total order as completions — at equal times the
/// earlier-scheduled event fires first, deterministically.
#[derive(Debug, Clone, Copy)]
enum Completion {
    /// The fabric finishes `Job`'s fine-grain phase (attempt > 0 means
    /// it recovered from at least one fault first).
    Fpga { job: Job, attempt: u32 },
    /// CGC slot `slot` finishes a coarse-phase task.
    Cgc { task: CgcTask, slot: u32 },
    /// A bitstream load for `job`'s attempt fails after stalling the
    /// fabric for its full streaming time.
    LoadFault { job: Job, attempt: u32 },
    /// A transient fabric fault kills `job`'s in-flight fine phase.
    FabricFault { job: Job, attempt: u32 },
    /// Backoff elapsed: the fabric (still held by `job`) retries.
    FabricRetry { job: Job, attempt: u32 },
    /// An outage of CGC slot `slot` kills the task's in-flight coarse
    /// phase; the slot stays down until its repair event.
    SlotFault { task: CgcTask, slot: u32 },
    /// Failed CGC slot `slot` returns to the pool.
    SlotRepair { slot: u32 },
    /// `job_id`'s deadline: reap it if it still waits for the fabric.
    Deadline { job_id: u64 },
}

/// Streaming run accounting: counters plus one [`LatencySketch`] per
/// application and one aggregate — O(1) memory in the job count when
/// sketched. Shared by the calendar engine, the sharded runner (which
/// folds one ledger per shard) and the `#[cfg(test)]` heap oracle so
/// differential tests isolate the event-core difference.
pub(crate) struct Ledger {
    arrived: Vec<u64>,
    rejected: Vec<u64>,
    completed: Vec<u64>,
    per_app: Vec<LatencySketch>,
    total: LatencySketch,
    fpga_busy_cycles: u64,
    reconfig_stall_cycles: u64,
    reconfig_loads: u64,
    cgc_busy_cycles: u64,
    makespan: u64,
    // Reliability accounting (all zero on a fault-free run).
    load_failures: u64,
    fabric_kills: u64,
    slot_outages: u64,
    retries: u64,
    degraded: u64,
    aborted: u64,
    deadline_misses: u64,
    fault_lost_cycles: u64,
    slot_downtime_cycles: u64,
    clean: LatencySketch,
    faulted: LatencySketch,
}

impl Ledger {
    pub(crate) fn new(napps: usize, source: LatencySource) -> Self {
        Ledger {
            arrived: vec![0; napps],
            rejected: vec![0; napps],
            completed: vec![0; napps],
            per_app: (0..napps).map(|_| LatencySketch::new(source)).collect(),
            total: LatencySketch::new(source),
            fpga_busy_cycles: 0,
            reconfig_stall_cycles: 0,
            reconfig_loads: 0,
            cgc_busy_cycles: 0,
            makespan: 0,
            load_failures: 0,
            fabric_kills: 0,
            slot_outages: 0,
            retries: 0,
            degraded: 0,
            aborted: 0,
            deadline_misses: 0,
            fault_lost_cycles: 0,
            slot_downtime_cycles: 0,
            clean: LatencySketch::new(source),
            faulted: LatencySketch::new(source),
        }
    }

    fn complete(&mut self, job: &Job, now: u64, faulted: bool) {
        self.completed[job.app] += 1;
        let latency = now - job.arrival;
        self.per_app[job.app].record(latency);
        self.total.record(latency);
        if faulted {
            self.faulted.record(latency);
        } else {
            self.clean.record(latency);
        }
        self.makespan = self.makespan.max(now);
    }

    /// Fold another shard's ledger into this one. Counters add, the
    /// makespan is the max, and latency sketches merge via
    /// [`LatencySketch::merge_from`] — exact for both representations,
    /// so the folded percentiles are a pure function of the union
    /// multiset and independent of shard count and fold order.
    pub(crate) fn merge(&mut self, other: Ledger) {
        for (mine, theirs) in self.arrived.iter_mut().zip(&other.arrived) {
            *mine += theirs;
        }
        for (mine, theirs) in self.rejected.iter_mut().zip(&other.rejected) {
            *mine += theirs;
        }
        for (mine, theirs) in self.completed.iter_mut().zip(&other.completed) {
            *mine += theirs;
        }
        for (mine, theirs) in self.per_app.iter_mut().zip(&other.per_app) {
            mine.merge_from(theirs);
        }
        self.total.merge_from(&other.total);
        self.clean.merge_from(&other.clean);
        self.faulted.merge_from(&other.faulted);
        self.fpga_busy_cycles += other.fpga_busy_cycles;
        self.reconfig_stall_cycles += other.reconfig_stall_cycles;
        self.reconfig_loads += other.reconfig_loads;
        self.cgc_busy_cycles += other.cgc_busy_cycles;
        self.makespan = self.makespan.max(other.makespan);
        self.load_failures += other.load_failures;
        self.fabric_kills += other.fabric_kills;
        self.slot_outages += other.slot_outages;
        self.retries += other.retries;
        self.degraded += other.degraded;
        self.aborted += other.aborted;
        self.deadline_misses += other.deadline_misses;
        self.fault_lost_cycles = self
            .fault_lost_cycles
            .saturating_add(other.fault_lost_cycles);
        self.slot_downtime_cycles = self
            .slot_downtime_cycles
            .saturating_add(other.slot_downtime_cycles);
    }

    pub(crate) fn into_report(
        self,
        profiles: &[AppProfile],
        policy: &str,
        config: SimConfig,
        cgc_slots: usize,
        faults: FaultSpec,
        recovery: RecoveryPolicy,
    ) -> RuntimeReport {
        let apps: Vec<AppStats> = profiles
            .iter()
            .enumerate()
            .map(|(a, p)| {
                AppStats::from_sketch(
                    &p.name,
                    self.arrived[a],
                    self.completed[a],
                    self.rejected[a],
                    &self.per_app[a],
                )
            })
            .collect();
        RuntimeReport {
            policy: policy.to_owned(),
            config,
            cgc_slots,
            makespan: self.makespan,
            fpga_busy_cycles: self.fpga_busy_cycles,
            reconfig_stall_cycles: self.reconfig_stall_cycles,
            reconfig_loads: self.reconfig_loads,
            cgc_busy_cycles: self.cgc_busy_cycles,
            p50_latency: self.total.percentile(50),
            p95_latency: self.total.percentile(95),
            latency_source: self.total.source(),
            faults,
            recovery,
            queue: CalendarStats::default(),
            reliability: ReliabilityStats {
                injected: self.load_failures + self.fabric_kills + self.slot_outages,
                load_failures: self.load_failures,
                fabric_kills: self.fabric_kills,
                slot_outages: self.slot_outages,
                retries: self.retries,
                degraded: self.degraded,
                aborted: self.aborted,
                deadline_misses: self.deadline_misses,
                fault_lost_cycles: self.fault_lost_cycles,
                slot_downtime_cycles: self.slot_downtime_cycles,
                clean_completed: self.clean.count(),
                faulted_completed: self.faulted.count(),
                p95_clean: self.clean.percentile(95),
                p95_faulted: self.faulted.percentile(95),
            },
            apps,
        }
    }
}

pub(crate) struct Engine<'a> {
    profiles: &'a [AppProfile],
    platform: &'a Platform,
    policy: &'a dyn SchedulePolicy,
    config: SimConfig,
    faults: FaultSpec,
    recovery: RecoveryPolicy,

    events: CalendarQueue<Completion>,
    next_seq: u64,

    fpga_queue: Vec<Job>,
    fpga_busy: bool,
    loaded: Option<ConfigId>,
    /// Region-granular reconfiguration, when a partial plan is attached
    /// (a single full-fabric region keeps the scalar path, `None` here).
    region_plan: Option<&'a RegionPlan>,
    /// Configuration resident in each region (all `None` without a plan).
    region_owner: Vec<Option<ConfigId>>,

    cgc_queue: VecDeque<CgcTask>,
    /// Free CGC slot ids, kept sorted descending so `pop()` hands out
    /// the smallest id. Slots are fungible for timing — this ordering
    /// only pins *which* slot a task runs on, so per-slot trace tracks
    /// are deterministic while every report stays identical to the old
    /// count-based pool.
    free_slots: Vec<u32>,

    ledger: Ledger,
    trace: Option<&'a dyn TraceSink>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(sim: &Simulation<'a>, source: LatencySource) -> Self {
        // Day width sized from the mean per-job service demand: events
        // land one service time apart on average, so buckets stay short.
        let width_hint = if sim.profiles.is_empty() {
            1024
        } else {
            sim.profiles.iter().map(|p| p.service_cycles()).sum::<u64>() / sim.profiles.len() as u64
        };
        let region_plan = sim.regions.filter(|plan| plan.is_partial());
        Engine {
            profiles: sim.profiles,
            platform: sim.platform,
            policy: sim.policy,
            config: sim.config,
            faults: sim.faults,
            recovery: sim.recovery,
            events: CalendarQueue::new(width_hint),
            next_seq: 0,
            fpga_queue: Vec::new(),
            fpga_busy: false,
            loaded: None,
            region_plan,
            region_owner: vec![None; region_plan.map_or(0, RegionPlan::regions)],
            cgc_queue: VecDeque::new(),
            free_slots: (0..sim.platform.datapath.cgcs.len() as u32).rev().collect(),
            ledger: Ledger::new(sim.profiles.len(), source),
            trace: sim.trace,
        }
    }

    fn schedule(&mut self, time: u64, completion: Completion) {
        self.events.push(time, self.next_seq, completion);
        self.next_seq += 1;
    }

    /// Emit a trace event when a sink is attached. Everything observable
    /// flows through here, so a run with no sink does exactly the work
    /// it did before tracing existed.
    fn emit(&self, event: TraceEvent) {
        if let Some(trace) = self.trace {
            trace.record(event);
        }
    }

    /// Return `slot` to the free pool, keeping the descending order that
    /// makes `pop()` yield the smallest free id.
    fn release_slot(&mut self, slot: u32) {
        self.free_slots.push(slot);
        self.free_slots.sort_unstable_by(|a, b| b.cmp(a));
    }

    /// Reconfiguration charge for dispatching `job` now: `(bitstream
    /// loads performed, fabric stall cycles)`.
    fn reconfig_charge(&self, job: &Job) -> (u64, u64) {
        if let Some(plan) = self.region_plan {
            return self.region_charge(plan, job);
        }
        let areas = &self.profiles[job.app].config.partition_areas;
        if areas.is_empty() || (self.config.config_cache && self.loaded == Some(job.config)) {
            return (0, 0);
        }
        let model = &self.platform.reconfig;
        let stall = if self.config.prefetch {
            model.load_cycles(areas[0])
        } else {
            areas.iter().map(|&a| model.load_cycles(a)).sum()
        };
        (areas.len() as u64, stall)
    }

    /// Region-granular charge: only the *stale* regions of the job's
    /// residency set are reprogrammed, each priced by the area of the
    /// region actually rewritten — not the logical partition area. A
    /// region already holding the job's configuration is skipped (when
    /// the cache is on), so another tenant's regions stay untouched and
    /// keep executing through the load. Prefetch overlaps all but the
    /// first stale region's load with execution, as in the scalar model.
    fn region_charge(&self, plan: &RegionPlan, job: &Job) -> (u64, u64) {
        let model = &self.platform.reconfig;
        let mut loads = 0u64;
        let mut stall = 0u64;
        for &r in plan.touched(job.app) {
            if self.config.config_cache && self.region_owner[r] == Some(job.config) {
                continue;
            }
            loads += 1;
            if !self.config.prefetch || loads == 1 {
                stall += model.load_cycles(plan.region_area(r));
            }
        }
        (loads, stall)
    }

    fn dispatch_fpga(&mut self, now: u64) {
        if self.fpga_busy || self.fpga_queue.is_empty() {
            return;
        }
        let pick = self.policy.pick(&self.fpga_queue, self.loaded);
        let job = self.fpga_queue.swap_remove(pick);
        self.fpga_busy = true;
        self.start_fabric_attempt(job, 0, now);
    }

    /// Begin fabric attempt `attempt` of `job` (the fabric is already
    /// held). Consults the fault spec for a load failure, then a
    /// transient kill; on the zero-rate spec neither stream is touched
    /// and the charge/schedule sequence is exactly the fault-free one.
    fn start_fabric_attempt(&mut self, job: Job, attempt: u32, now: u64) {
        let (loads, stall) = self.reconfig_charge(&job);
        if loads > 0 {
            // The load span covers the fabric-blocking stall (with
            // prefetch that is only the first partition); `arg` carries
            // the bitstream count.
            self.emit(
                TraceEvent::span(TrackId::Fabric, now, stall, "load")
                    .with_job(job.id)
                    .with_arg(loads),
            );
            // Region reprogram instants, emitted against the pre-load
            // residency so they mark exactly the stale regions the
            // charge priced (same predicate as `region_charge`).
            if self.trace.is_some() {
                if let Some(plan) = self.region_plan {
                    for &r in plan.touched(job.app) {
                        if self.config.config_cache && self.region_owner[r] == Some(job.config) {
                            continue;
                        }
                        self.emit(
                            TraceEvent::instant(TrackId::Region(r as u32), now, "reprogram")
                                .with_job(job.id),
                        );
                    }
                }
            }
        }
        if loads > 0 && self.faults.load_fails(job.id, attempt) {
            // The load aborts after its full streaming stall; a partial
            // bitstream is useless, so the resident configuration is
            // scrubbed and the stall is pure loss. Under a region plan
            // the outage is region-scoped: only the regions the load was
            // rewriting are scrubbed — other tenants stay resident.
            self.ledger.load_failures += 1;
            self.ledger.fault_lost_cycles += stall;
            self.loaded = None;
            if let Some(plan) = self.region_plan {
                for &r in plan.touched(job.app) {
                    self.region_owner[r] = None;
                    self.emit(
                        TraceEvent::instant(TrackId::Region(r as u32), now + stall, "scrub")
                            .with_job(job.id),
                    );
                }
            }
            self.emit(
                TraceEvent::instant(TrackId::Fabric, now + stall, "fault_load")
                    .with_job(job.id)
                    .with_arg(attempt as u64),
            );
            self.schedule(now + stall, Completion::LoadFault { job, attempt });
            return;
        }
        if loads > 0 {
            self.loaded = Some(job.config);
            if let Some(plan) = self.region_plan {
                for &r in plan.touched(job.app) {
                    self.region_owner[r] = Some(job.config);
                }
            }
        }
        self.ledger.reconfig_loads += loads;
        self.ledger.reconfig_stall_cycles += stall;
        if let Some(frac) = self.faults.fabric_kill(job.id, attempt) {
            // Transient fault: the drawn fraction of the fine phase runs
            // (and is wasted) before the kill.
            let wasted = permille_of(job.fine_cycles, frac);
            self.ledger.fabric_kills += 1;
            self.ledger.fault_lost_cycles += wasted;
            self.emit(
                TraceEvent::span(TrackId::Fabric, now + stall, wasted, "fine")
                    .with_job(job.id)
                    .with_arg(attempt as u64),
            );
            self.emit(
                TraceEvent::instant(TrackId::Fabric, now + stall + wasted, "fault_fabric")
                    .with_job(job.id)
                    .with_arg(attempt as u64),
            );
            self.schedule(
                now + stall + wasted,
                Completion::FabricFault { job, attempt },
            );
            return;
        }
        self.ledger.fpga_busy_cycles += job.fine_cycles;
        self.emit(
            TraceEvent::span(TrackId::Fabric, now + stall, job.fine_cycles, "fine")
                .with_job(job.id)
                .with_arg(attempt as u64),
        );
        self.schedule(
            now + stall + job.fine_cycles,
            Completion::Fpga { job, attempt },
        );
    }

    /// A fabric attempt failed (load fault or transient kill): retry
    /// after backoff while budget remains — the job holds the fabric
    /// through the whole retry chain — else release the fabric and
    /// degrade or abort.
    fn recover_fabric(&mut self, job: Job, attempt: u32, now: u64) {
        if attempt < self.recovery.max_retries {
            self.ledger.retries += 1;
            let delay = self.recovery.backoff.delay(attempt);
            self.emit(
                TraceEvent::instant(TrackId::Scheduler, now, "retry")
                    .with_job(job.id)
                    .with_arg((attempt + 1) as u64),
            );
            self.emit(
                TraceEvent::span(TrackId::Fabric, now, delay, "backoff")
                    .with_job(job.id)
                    .with_arg(attempt as u64),
            );
            self.schedule(
                now + delay,
                Completion::FabricRetry {
                    job,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        self.fpga_busy = false;
        if self.recovery.degrade && !self.platform.datapath.cgcs.is_empty() {
            self.emit(TraceEvent::instant(TrackId::Scheduler, now, "degrade").with_job(job.id));
            self.cgc_queue.push_back(CgcTask {
                job,
                cycles: self.profiles[job.app].fallback_cycles(),
                attempt: 0,
                degraded: true,
                faulted: true,
            });
            self.dispatch_cgc(now);
        } else {
            self.ledger.aborted += 1;
            self.emit(TraceEvent::instant(TrackId::Scheduler, now, "abort").with_job(job.id));
            self.emit(TraceEvent::job_end(now, job.id));
        }
        self.dispatch_fpga(now);
    }

    fn dispatch_cgc(&mut self, now: u64) {
        while let Some(&slot) = self.free_slots.last() {
            let Some(task) = self.cgc_queue.pop_front() else {
                return;
            };
            self.free_slots.pop();
            if !task.degraded {
                if let Some(frac) = self.faults.slot_outage(task.job.id, task.attempt) {
                    // Outage: the drawn fraction of the coarse phase runs
                    // before the slot dies; the slot stays down until its
                    // repair event returns it to the pool.
                    let wasted = permille_of(task.cycles, frac);
                    self.ledger.slot_outages += 1;
                    self.ledger.fault_lost_cycles += wasted;
                    self.emit(
                        TraceEvent::span(TrackId::CgcSlot(slot), now, wasted, "coarse")
                            .with_job(task.job.id)
                            .with_arg(task.attempt as u64),
                    );
                    self.emit(
                        TraceEvent::instant(
                            TrackId::CgcSlot(slot),
                            now.saturating_add(wasted),
                            "fault_slot",
                        )
                        .with_job(task.job.id),
                    );
                    // Saturating: dispatches after a near-`u64::MAX`
                    // slot repair pin to the end of the clock instead
                    // of overflowing it.
                    self.schedule(
                        now.saturating_add(wasted),
                        Completion::SlotFault { task, slot },
                    );
                    continue;
                }
            }
            self.ledger.cgc_busy_cycles += task.cycles;
            self.emit(
                TraceEvent::span(
                    TrackId::CgcSlot(slot),
                    now,
                    task.cycles,
                    if task.degraded { "fallback" } else { "coarse" },
                )
                .with_job(task.job.id)
                .with_arg(task.attempt as u64),
            );
            self.schedule(
                now.saturating_add(task.cycles),
                Completion::Cgc { task, slot },
            );
        }
    }

    fn arrive(&mut self, job: Job) {
        self.ledger.arrived[job.app] += 1;
        self.emit(
            TraceEvent::instant(TrackId::Scheduler, job.arrival, "arrive")
                .with_job(job.id)
                .with_arg(job.app as u64),
        );
        if self
            .config
            .queue_bound
            .is_some_and(|bound| self.fpga_queue.len() >= bound.get())
        {
            self.ledger.rejected[job.app] += 1;
            self.emit(
                TraceEvent::instant(TrackId::Scheduler, job.arrival, "reject").with_job(job.id),
            );
        } else {
            self.emit(TraceEvent::job_begin(job.arrival, job.id));
            if let Some(reap) = self.faults.job_deadline(job.arrival) {
                self.schedule(reap, Completion::Deadline { job_id: job.id });
            }
            self.fpga_queue.push(job);
            self.dispatch_fpga(job.arrival);
        }
    }

    /// Drain `jobs` and build the final report ([`Engine::run_core`]
    /// plus the ledger → report fold).
    fn run<I: Iterator<Item = Job>>(self, jobs: I) -> RuntimeReport {
        let profiles = self.profiles;
        let policy = self.policy.name();
        let config = self.config;
        let cgc_slots = self.platform.datapath.cgcs.len();
        let faults = self.faults;
        let recovery = self.recovery;
        let (ledger, queue) = self.run_core(jobs);
        let mut report = ledger.into_report(profiles, policy, config, cgc_slots, faults, recovery);
        report.queue = queue;
        report
    }

    /// Drain `jobs` (non-decreasing arrival times) against the platform,
    /// returning the raw accounting instead of a finished report — the
    /// sharded runner folds one `(Ledger, CalendarStats)` pair per shard
    /// before building the merged report.
    ///
    /// The lazy merge gives arrivals priority on time ties, reproducing
    /// the historical heap order in which every arrival carried a
    /// smaller sequence number than any completion.
    pub(crate) fn run_core<I: Iterator<Item = Job>>(
        mut self,
        mut jobs: I,
    ) -> (Ledger, CalendarStats) {
        let mut pending = jobs.next();
        let mut last_arrival = 0u64;
        loop {
            let arrival_is_next = match (pending.as_ref(), self.events.peek_key()) {
                (Some(job), Some((t, _))) => job.arrival <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if arrival_is_next {
                let job = pending.take().unwrap();
                assert!(
                    job.arrival >= last_arrival,
                    "job arrivals must be non-decreasing (job {} arrives at {} after {})",
                    job.id,
                    job.arrival,
                    last_arrival
                );
                last_arrival = job.arrival;
                pending = jobs.next();
                self.arrive(job);
            } else {
                let (now, _, completion) = self.events.pop().unwrap();
                match completion {
                    Completion::Fpga { job, attempt } => {
                        self.fpga_busy = false;
                        let faulted = attempt > 0;
                        if job.coarse_cycles > 0 {
                            self.cgc_queue.push_back(CgcTask {
                                job,
                                cycles: job.coarse_cycles,
                                attempt: 0,
                                degraded: false,
                                faulted,
                            });
                            self.dispatch_cgc(now);
                        } else {
                            self.ledger.complete(&job, now, faulted);
                            self.emit(
                                TraceEvent::instant(TrackId::Scheduler, now, "complete")
                                    .with_job(job.id),
                            );
                            self.emit(TraceEvent::job_end(now, job.id));
                        }
                        self.dispatch_fpga(now);
                    }
                    Completion::Cgc { task, slot } => {
                        self.release_slot(slot);
                        if task.degraded {
                            self.ledger.degraded += 1;
                        }
                        self.ledger
                            .complete(&task.job, now, task.faulted || task.attempt > 0);
                        self.emit(
                            TraceEvent::instant(TrackId::Scheduler, now, "complete")
                                .with_job(task.job.id),
                        );
                        self.emit(TraceEvent::job_end(now, task.job.id));
                        self.dispatch_cgc(now);
                    }
                    Completion::LoadFault { job, attempt }
                    | Completion::FabricFault { job, attempt } => {
                        self.recover_fabric(job, attempt, now);
                    }
                    Completion::FabricRetry { job, attempt } => {
                        self.start_fabric_attempt(job, attempt, now);
                    }
                    Completion::SlotFault { task, slot } => {
                        // The slot stays out of the pool until repair.
                        // Saturating: a repair window near `u64::MAX`
                        // pins the slot down for the rest of the run
                        // instead of overflowing the clock or the
                        // downtime counter.
                        self.ledger.slot_downtime_cycles = self
                            .ledger
                            .slot_downtime_cycles
                            .saturating_add(self.faults.repair_cycles);
                        self.emit(TraceEvent::span(
                            TrackId::CgcSlot(slot),
                            now,
                            self.faults.repair_cycles,
                            "down",
                        ));
                        self.schedule(
                            now.saturating_add(self.faults.repair_cycles),
                            Completion::SlotRepair { slot },
                        );
                        if task.attempt < self.recovery.max_retries {
                            self.ledger.retries += 1;
                            self.emit(
                                TraceEvent::instant(TrackId::Scheduler, now, "retry")
                                    .with_job(task.job.id)
                                    .with_arg((task.attempt + 1) as u64),
                            );
                            self.cgc_queue.push_back(CgcTask {
                                attempt: task.attempt + 1,
                                faulted: true,
                                ..task
                            });
                            self.dispatch_cgc(now);
                        } else if self.recovery.degrade {
                            // Same pricing, but on the fault-immune
                            // fallback path: the reliable slow lane.
                            self.emit(
                                TraceEvent::instant(TrackId::Scheduler, now, "degrade")
                                    .with_job(task.job.id),
                            );
                            self.cgc_queue.push_back(CgcTask {
                                degraded: true,
                                faulted: true,
                                ..task
                            });
                            self.dispatch_cgc(now);
                        } else {
                            self.ledger.aborted += 1;
                            self.emit(
                                TraceEvent::instant(TrackId::Scheduler, now, "abort")
                                    .with_job(task.job.id),
                            );
                            self.emit(TraceEvent::job_end(now, task.job.id));
                        }
                    }
                    Completion::SlotRepair { slot } => {
                        self.release_slot(slot);
                        self.emit(TraceEvent::instant(TrackId::CgcSlot(slot), now, "repair"));
                        self.dispatch_cgc(now);
                    }
                    Completion::Deadline { job_id } => {
                        // Only still-queued jobs are reaped; a dispatched
                        // job is committed and runs to completion.
                        if let Some(pos) = self.fpga_queue.iter().position(|j| j.id == job_id) {
                            self.fpga_queue.swap_remove(pos);
                            self.ledger.deadline_misses += 1;
                            self.emit(
                                TraceEvent::instant(TrackId::Scheduler, now, "deadline")
                                    .with_job(job_id),
                            );
                            self.emit(TraceEvent::job_end(now, job_id));
                        }
                    }
                }
            }
        }
        let queue = self.events.stats();
        (self.ledger, queue)
    }
}

/// The simulation entry point: a builder over everything a run needs.
///
/// All consumers — the CLI, `amdrel-explore`'s contention scorer, the
/// case studies and the benches — route through this facade, so new
/// knobs land as builder methods instead of another positional parameter
/// on a free function. The platform is the only required argument;
/// profiles default to empty, the policy to [`Fcfs`], the knobs to
/// [`SimConfig::default`] and latency aggregation to
/// [`SketchMode::Auto`].
///
/// Identical inputs produce bit-identical [`RuntimeReport`]s: the event
/// order is total, the policies are deterministic, and the simulator
/// draws no randomness.
///
/// # Examples
///
/// ```
/// use amdrel_core::Platform;
/// use amdrel_runtime::{AppProfile, ShortestJobFirst, Simulation, WorkloadSpec};
///
/// let profiles = vec![
///     AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
///     AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
/// ];
/// let platform = Platform::paper(1500, 2);
/// let spec = WorkloadSpec::uniform(42, 64, &profiles, 120); // 20% overload
///
/// let report = Simulation::new(&platform)
///     .profiles(&profiles)
///     .policy(&ShortestJobFirst)
///     .run_mix(&spec);
/// assert_eq!(report.arrived(), 64);
/// println!("{}", report.format_table());
/// ```
#[derive(Clone, Copy)]
pub struct Simulation<'a> {
    pub(crate) platform: &'a Platform,
    pub(crate) profiles: &'a [AppProfile],
    pub(crate) policy: &'a dyn SchedulePolicy,
    pub(crate) config: SimConfig,
    pub(crate) sketch: SketchMode,
    pub(crate) faults: FaultSpec,
    pub(crate) recovery: RecoveryPolicy,
    pub(crate) regions: Option<&'a RegionPlan>,
    pub(crate) trace: Option<&'a dyn TraceSink>,
    pub(crate) shards: usize,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("profiles", &self.profiles.len())
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .field("sketch", &self.sketch)
            .field("faults", &self.faults)
            .field("recovery", &self.recovery)
            .field("regions", &self.regions.map(RegionPlan::regions))
            .field("trace", &self.trace.is_some())
            .field("shards", &self.shards)
            .finish()
    }
}

impl<'a> Simulation<'a> {
    /// A simulation of `platform` with default knobs (no profiles, FCFS,
    /// [`SimConfig::default`], [`SketchMode::Auto`], no faults).
    pub fn new(platform: &'a Platform) -> Self {
        Simulation {
            platform,
            profiles: &[],
            policy: &Fcfs,
            config: SimConfig::default(),
            sketch: SketchMode::Auto,
            faults: FaultSpec::none(),
            recovery: RecoveryPolicy::default(),
            regions: None,
            trace: None,
            shards: 1,
        }
    }

    /// The application profiles jobs index into.
    pub fn profiles(mut self, profiles: &'a [AppProfile]) -> Self {
        self.profiles = profiles;
        self
    }

    /// The dispatch policy (default [`Fcfs`]).
    pub fn policy(mut self, policy: &'a dyn SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the whole knob block at once.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggle the configuration cache (default on).
    pub fn config_cache(mut self, on: bool) -> Self {
        self.config.config_cache = on;
        self
    }

    /// Toggle bitstream prefetch (default off).
    pub fn prefetch(mut self, on: bool) -> Self {
        self.config.prefetch = on;
        self
    }

    /// Admission bound on the fabric queue; `None` (default) admits
    /// everything.
    pub fn queue_bound(mut self, bound: Option<NonZeroUsize>) -> Self {
        self.config.queue_bound = bound;
        self
    }

    /// Attach a [`RegionPlan`] and switch reconfiguration pricing to
    /// region granularity: a dispatch reprograms only the stale regions
    /// of the job's residency set, each priced by the *region* area
    /// actually rewritten. Default: none (the scalar area pool).
    ///
    /// A plan with a single full-fabric region is degenerate — it
    /// admits no partial loads, so the engine keeps the scalar path and
    /// the report is bit-identical to not attaching a plan.
    pub fn regions(mut self, plan: &'a RegionPlan) -> Self {
        self.regions = Some(plan);
        self
    }

    /// Attach a seeded fault-injection spec (default
    /// [`FaultSpec::none`]). A zero-rate spec is inert: the run is
    /// byte-identical to one with no spec attached.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// The recovery policy applied when injected faults fire (default
    /// [`RecoveryPolicy::default`]: 3 retries, abort on exhaustion).
    /// Irrelevant — and behaviour-neutral — while the fault spec is
    /// inert.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attach a [`TraceSink`] the engine emits per-job lifecycle events
    /// into (default: none). Tracing is a pure observer: enabling it
    /// never changes scheduling, timing, or any report field. Events
    /// carry simulated-cycle timestamps and arrive in the engine's
    /// deterministic `(time, seq)` order, so identical runs fill the
    /// sink identically.
    pub fn trace(mut self, sink: &'a dyn TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// How completion latencies are aggregated (default
    /// [`SketchMode::Auto`]: exact below
    /// [`EXACT_THRESHOLD`](crate::EXACT_THRESHOLD) jobs, sketched — and
    /// O(1) in memory — at or above it).
    pub fn sketch_mode(mut self, mode: SketchMode) -> Self {
        self.sketch = mode;
        self
    }

    /// Partition the tenants across `k` independent shards (application
    /// `i` lands on shard `i % k`), run one full platform replica per
    /// shard on scoped threads, and fold the per-shard ledgers, event
    /// logs and calendar statistics back together in shard order.
    ///
    /// The merged report is a pure function of the inputs: every
    /// deterministic field (counters, makespan, latency percentiles,
    /// per-app stats, JSON, metrics) is independent of `k`'s thread
    /// scheduling, and identical to folding the shards serially. With
    /// `k == 1` — the default — the run routes through the
    /// single-threaded engine untouched, bit for bit. A workload whose
    /// jobs all target one application is byte-identical to the
    /// unsharded run at *every* `k` (the other shards simulate nothing).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k > 0, "a simulation needs at least one shard");
        self.shards = k;
        self
    }

    /// Play an explicit job slice (any order; ties and out-of-order
    /// arrivals replay exactly as the historical heap processed them:
    /// by `(arrival, slice index)`).
    ///
    /// # Panics
    ///
    /// Panics if a job's `app` index is out of range for the profiles,
    /// or if the platform has no CGCs while a job carries coarse-grain
    /// work.
    pub fn run(&self, jobs: &[Job]) -> RuntimeReport {
        for job in jobs {
            assert!(
                job.app < self.profiles.len(),
                "job {} references app {} but only {} profiles given",
                job.id,
                job.app,
                self.profiles.len()
            );
            assert!(
                job.coarse_cycles == 0 || !self.platform.datapath.cgcs.is_empty(),
                "coarse-grain work needs at least one CGC"
            );
        }
        let source = self.sketch.resolve(jobs.len());
        if jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival) {
            self.dispatch(jobs.iter().copied(), source)
        } else {
            // The historical heap ordered arrivals by (time, index); a
            // stable sort on arrival reproduces that exactly.
            let mut order: Vec<usize> = (0..jobs.len()).collect();
            order.sort_by_key(|&i| jobs[i].arrival);
            self.dispatch(order.into_iter().map(|i| jobs[i]), source)
        }
    }

    /// Route a time-sorted job stream to the single-threaded engine or
    /// the sharded runner. The [`LatencySource`] is resolved from the
    /// *global* job count before partitioning, so every shard records
    /// into the same representation and `latency_source` is independent
    /// of the shard count.
    fn dispatch<I: Iterator<Item = Job>>(&self, jobs: I, source: LatencySource) -> RuntimeReport {
        if self.shards > 1 {
            crate::shard::run_sharded(self, jobs, source)
        } else {
            Engine::new(self, source).run(jobs)
        }
    }

    /// Stream jobs straight from an iterator (arrival times must be
    /// non-decreasing, as [`WorkloadSpec::generate_streaming`] yields
    /// them), so million-job runs never materialise a `Vec<Job>`.
    ///
    /// # Panics
    ///
    /// Panics if arrivals regress, an `app` index is out of range, or
    /// coarse-grain work meets a platform with no CGCs.
    pub fn run_streaming<I>(&self, jobs: I) -> RuntimeReport
    where
        I: ExactSizeIterator<Item = Job>,
    {
        let source = self.sketch.resolve(jobs.len());
        let platform_has_cgc = !self.platform.datapath.cgcs.is_empty();
        let nprofiles = self.profiles.len();
        self.dispatch(
            jobs.inspect(move |job| {
                assert!(
                    job.app < nprofiles,
                    "job {} references app {} but only {} profiles given",
                    job.id,
                    job.app,
                    nprofiles
                );
                assert!(
                    job.coarse_cycles == 0 || platform_has_cgc,
                    "coarse-grain work needs at least one CGC"
                );
            }),
            source,
        )
    }

    /// Generate `spec`'s seeded job stream against the profiles and play
    /// it — the one-shot entry point external scorers use. Streams the
    /// generator straight into the engine, so memory stays O(1) in
    /// `spec.jobs` when sketched.
    ///
    /// # Panics
    ///
    /// As [`WorkloadSpec::generate`] (empty mix, zero weight,
    /// out-of-range app index) and [`Simulation::run`] (coarse work with
    /// no CGCs).
    pub fn run_mix(&self, spec: &WorkloadSpec) -> RuntimeReport {
        self.run_streaming(spec.generate_streaming(self.profiles))
    }
}

/// Play `jobs` (from [`WorkloadSpec::generate`]) against `platform`
/// under `policy`.
///
/// # Deprecated
///
/// Route through the [`Simulation`] builder instead:
///
/// ```
/// use amdrel_core::Platform;
/// use amdrel_runtime::{AppProfile, Fcfs, SimConfig, Simulation, WorkloadSpec};
///
/// let profiles = vec![AppProfile::synthetic("app", 0, 5_000, 1_000, vec![400])];
/// let platform = Platform::paper(1500, 2);
/// let jobs = WorkloadSpec::uniform(42, 32, &profiles, 110).generate(&profiles);
/// let report = Simulation::new(&platform)
///     .profiles(&profiles)
///     .policy(&Fcfs)
///     .config(SimConfig::default())
///     .run(&jobs);
/// assert_eq!(report.arrived(), 32);
/// ```
///
/// # Panics
///
/// As [`Simulation::run`].
#[deprecated(note = "route through the `Simulation` builder: \
                     `Simulation::new(platform).profiles(..).policy(..).run(jobs)`")]
pub fn run_simulation(
    profiles: &[AppProfile],
    jobs: &[Job],
    platform: &Platform,
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> RuntimeReport {
    Simulation::new(platform)
        .profiles(profiles)
        .policy(policy)
        .config(*config)
        .run(jobs)
}

/// One-shot convenience: generate `spec`'s seeded job stream against
/// `profiles` and play it.
///
/// # Deprecated
///
/// Route through the [`Simulation`] builder instead:
///
/// ```
/// use amdrel_core::Platform;
/// use amdrel_runtime::{AppProfile, Fcfs, Simulation, WorkloadSpec};
///
/// let profiles = vec![AppProfile::synthetic("app", 0, 5_000, 1_000, vec![400])];
/// let spec = WorkloadSpec::uniform(42, 32, &profiles, 110);
/// let report = Simulation::new(&Platform::paper(1500, 2))
///     .profiles(&profiles)
///     .policy(&Fcfs)
///     .run_mix(&spec);
/// assert_eq!(report.arrived(), 32);
/// ```
///
/// # Panics
///
/// As [`Simulation::run_mix`].
#[deprecated(note = "route through the `Simulation` builder: \
                     `Simulation::new(platform).profiles(..).policy(..).run_mix(spec)`")]
pub fn simulate_mix(
    profiles: &[AppProfile],
    spec: &WorkloadSpec,
    platform: &Platform,
    policy: &dyn SchedulePolicy,
    config: &SimConfig,
) -> RuntimeReport {
    Simulation::new(platform)
        .profiles(profiles)
        .policy(policy)
        .config(*config)
        .run_mix(spec)
}

/// The retained `BinaryHeap` event core, kept verbatim as the
/// differential-testing oracle: every event (arrivals included) enters
/// one heap ordered by `(time, seq)`. Accounting goes through the same
/// [`Ledger`], so a report mismatch can only come from the event core.
#[cfg(test)]
mod oracle {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum EventKind {
        Arrival(usize),
        FpgaDone(Job),
        CgcDone(Job),
    }

    type Event = Reverse<(u64, u64, EventKind)>;

    struct HeapState<'a> {
        profiles: &'a [AppProfile],
        jobs: &'a [Job],
        platform: &'a Platform,
        policy: &'a dyn SchedulePolicy,
        config: SimConfig,
        heap: BinaryHeap<Event>,
        next_seq: u64,
        fpga_queue: Vec<Job>,
        fpga_busy: bool,
        loaded: Option<ConfigId>,
        cgc_queue: VecDeque<Job>,
        free_slots: usize,
        ledger: Ledger,
    }

    impl HeapState<'_> {
        fn push(&mut self, time: u64, kind: EventKind) {
            self.heap.push(Reverse((time, self.next_seq, kind)));
            self.next_seq += 1;
        }

        fn reconfig_charge(&self, job: &Job) -> (u64, u64) {
            let areas = &self.profiles[job.app].config.partition_areas;
            if areas.is_empty() || (self.config.config_cache && self.loaded == Some(job.config)) {
                return (0, 0);
            }
            let model = &self.platform.reconfig;
            let stall = if self.config.prefetch {
                model.load_cycles(areas[0])
            } else {
                areas.iter().map(|&a| model.load_cycles(a)).sum()
            };
            (areas.len() as u64, stall)
        }

        fn dispatch_fpga(&mut self, now: u64) {
            if self.fpga_busy || self.fpga_queue.is_empty() {
                return;
            }
            let pick = self.policy.pick(&self.fpga_queue, self.loaded);
            let job = self.fpga_queue.swap_remove(pick);
            let (loads, stall) = self.reconfig_charge(&job);
            if loads > 0 {
                self.loaded = Some(job.config);
            }
            self.ledger.reconfig_loads += loads;
            self.ledger.reconfig_stall_cycles += stall;
            self.ledger.fpga_busy_cycles += job.fine_cycles;
            self.fpga_busy = true;
            self.push(now + stall + job.fine_cycles, EventKind::FpgaDone(job));
        }

        fn dispatch_cgc(&mut self, now: u64) {
            while self.free_slots > 0 {
                let Some(job) = self.cgc_queue.pop_front() else {
                    return;
                };
                self.free_slots -= 1;
                self.ledger.cgc_busy_cycles += job.coarse_cycles;
                self.push(now + job.coarse_cycles, EventKind::CgcDone(job));
            }
        }

        fn run(mut self) -> RuntimeReport {
            while let Some(Reverse((now, _, kind))) = self.heap.pop() {
                match kind {
                    EventKind::Arrival(job_idx) => {
                        let job = self.jobs[job_idx];
                        self.ledger.arrived[job.app] += 1;
                        if self
                            .config
                            .queue_bound
                            .is_some_and(|b| self.fpga_queue.len() >= b.get())
                        {
                            self.ledger.rejected[job.app] += 1;
                        } else {
                            self.fpga_queue.push(job);
                            self.dispatch_fpga(now);
                        }
                    }
                    EventKind::FpgaDone(job) => {
                        self.fpga_busy = false;
                        if job.coarse_cycles > 0 {
                            self.cgc_queue.push_back(job);
                            self.dispatch_cgc(now);
                        } else {
                            self.ledger.complete(&job, now, false);
                        }
                        self.dispatch_fpga(now);
                    }
                    EventKind::CgcDone(job) => {
                        self.free_slots += 1;
                        self.ledger.complete(&job, now, false);
                        self.dispatch_cgc(now);
                    }
                }
            }
            // The oracle is deliberately fault-free: fault determinism is
            // covered by explicit replay tests, and a zero-rate calendar
            // run must match this fault-free core bit for bit.
            self.ledger.into_report(
                self.profiles,
                self.policy.name(),
                self.config,
                self.platform.datapath.cgcs.len(),
                FaultSpec::none(),
                RecoveryPolicy::default(),
            )
        }
    }

    /// Run the heap oracle over `jobs` with the given sketch mode.
    pub(super) fn run_heap(
        profiles: &[AppProfile],
        jobs: &[Job],
        platform: &Platform,
        policy: &dyn SchedulePolicy,
        config: SimConfig,
        sketch: SketchMode,
    ) -> RuntimeReport {
        let mut state = HeapState {
            profiles,
            jobs,
            platform,
            policy,
            config,
            heap: BinaryHeap::with_capacity(jobs.len() * 2),
            next_seq: 0,
            fpga_queue: Vec::new(),
            fpga_busy: false,
            loaded: None,
            cgc_queue: VecDeque::new(),
            free_slots: platform.datapath.cgcs.len(),
            ledger: Ledger::new(profiles.len(), sketch.resolve(jobs.len())),
        };
        for (idx, job) in jobs.iter().enumerate() {
            state.push(job.arrival, EventKind::Arrival(idx));
        }
        state.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConfigAffinity, Fcfs, PriorityFirst, ShortestJobFirst};
    use crate::profile::FabricConfig;
    use crate::workload::AppShare;
    use amdrel_core::ReconfigModel;

    fn profile(name: &str, fine: u64, coarse: u64, areas: Vec<u64>) -> AppProfile {
        AppProfile::synthetic(name, 0, fine, coarse, areas)
    }

    fn job(id: u64, app: usize, arrival: u64, fine: u64, coarse: u64, cfg: &FabricConfig) -> Job {
        Job {
            id,
            app,
            arrival,
            priority: 0,
            fine_cycles: fine,
            coarse_cycles: coarse,
            config: cfg.id,
        }
    }

    fn platform() -> Platform {
        Platform::paper(1500, 2).with_reconfig(ReconfigModel {
            base_cycles: 10,
            cycles_per_area: 1,
        })
    }

    fn sim<'a>(profiles: &'a [AppProfile], platform: &'a Platform) -> Simulation<'a> {
        Simulation::new(platform).profiles(profiles)
    }

    #[test]
    fn single_job_timeline() {
        let p = vec![profile("a", 100, 40, vec![30])];
        let jobs = vec![job(0, 0, 5, 100, 40, &p[0].config)];
        let pf = platform();
        let r = sim(&p, &pf).run(&jobs);
        // Arrive 5, load 10+30=40, fine 100 → FPGA done 145, coarse 40 → 185.
        assert_eq!(r.makespan, 185);
        assert_eq!(r.reconfig_loads, 1);
        assert_eq!(r.reconfig_stall_cycles, 40);
        assert_eq!(r.apps[0].completed, 1);
        assert_eq!(r.apps[0].max_latency, 180);
        assert_eq!(r.latency_source, LatencySource::Exact);
    }

    #[test]
    fn config_cache_makes_reentry_free() {
        let p = vec![profile("a", 100, 0, vec![30])];
        let jobs: Vec<Job> = (0..4)
            .map(|i| job(i, 0, i * 10, 100, 0, &p[0].config))
            .collect();
        let pf = platform();
        let cached = sim(&p, &pf).run(&jobs);
        assert_eq!(cached.reconfig_loads, 1, "first load only");
        assert_eq!(cached.reconfig_stall_cycles, 40);

        let uncached = sim(&p, &pf).config_cache(false).run(&jobs);
        assert_eq!(uncached.reconfig_loads, 4, "every dispatch reloads");
        assert_eq!(uncached.reconfig_stall_cycles, 160);
        assert!(uncached.makespan > cached.makespan);
    }

    #[test]
    fn alternating_configs_thrash_the_cache() {
        let p = vec![
            profile("a", 100, 0, vec![30]),
            profile("b", 100, 0, vec![50]),
        ];
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let app = (i % 2) as usize;
                job(i, app, i, 100, 0, &p[app].config)
            })
            .collect();
        let pf = platform();
        let r = sim(&p, &pf).run(&jobs);
        assert_eq!(r.reconfig_loads, 6, "every dispatch swaps configs");
        assert_eq!(r.reconfig_stall_cycles, 3 * 40 + 3 * 60);
    }

    #[test]
    fn prefetch_hides_all_but_the_first_partition() {
        let p = vec![profile("a", 100, 0, vec![30, 30, 30])];
        let jobs = vec![job(0, 0, 0, 100, 0, &p[0].config)];
        let pf = platform();
        let plain = sim(&p, &pf).run(&jobs);
        assert_eq!(plain.reconfig_stall_cycles, 120);
        let with_prefetch = sim(&p, &pf).prefetch(true).run(&jobs);
        assert_eq!(
            with_prefetch.reconfig_stall_cycles, 40,
            "only the first bitstream stalls"
        );
        assert_eq!(
            with_prefetch.reconfig_loads, 3,
            "loads still happen, overlapped"
        );
    }

    #[test]
    fn queue_bound_rejects_overflow() {
        let p = vec![profile("a", 1_000, 0, vec![])];
        // 5 jobs arrive back-to-back; the first occupies the fabric, the
        // bound admits 2 waiters, the rest are rejected.
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(i, 0, i + 1, 1_000, 0, &p[0].config))
            .collect();
        let pf = platform();
        let r = sim(&p, &pf).queue_bound(NonZeroUsize::new(2)).run(&jobs);
        assert_eq!(r.apps[0].arrived, 5);
        assert_eq!(r.apps[0].completed, 3);
        assert_eq!(r.apps[0].rejected, 2);
    }

    #[test]
    fn cgc_slots_limit_coarse_parallelism() {
        // Zero fine phase: jobs pass straight to the CGC stage. Two
        // slots, four equal jobs → two waves.
        let p = vec![profile("a", 1, 100, vec![])];
        let jobs: Vec<Job> = (0..4).map(|i| job(i, 0, 0, 1, 100, &p[0].config)).collect();
        let pf = platform();
        let r = sim(&p, &pf).run(&jobs);
        assert_eq!(r.cgc_slots, 2);
        assert_eq!(r.cgc_busy_cycles, 400);
        // Fine phases serialise, finishing at 1,2,3,4; the first wave
        // holds both slots until 101/102, so the second wave completes
        // at 201 and 202.
        assert_eq!(r.makespan, 202);
    }

    #[test]
    fn sjf_reorders_the_queue() {
        let p = vec![
            profile("long", 1_000, 0, vec![]),
            profile("short", 10, 0, vec![]),
        ];
        // Long job arrives first and seizes the fabric; one more long and
        // two shorts queue behind it.
        let jobs = vec![
            job(0, 0, 0, 1_000, 0, &p[0].config),
            job(1, 0, 1, 1_000, 0, &p[0].config),
            job(2, 1, 2, 10, 0, &p[1].config),
            job(3, 1, 3, 10, 0, &p[1].config),
        ];
        let pf = platform();
        let fcfs = sim(&p, &pf).run(&jobs);
        let sjf = sim(&p, &pf).policy(&ShortestJobFirst).run(&jobs);
        assert_eq!(fcfs.makespan, sjf.makespan, "work-conserving: same drain");
        assert!(
            sjf.apps[1].max_latency < fcfs.apps[1].max_latency,
            "shorts overtake the queued long job"
        );
    }

    #[test]
    fn empty_workload_is_a_quiet_report() {
        let p = vec![profile("a", 10, 0, vec![5])];
        let pf = platform();
        let r = sim(&p, &pf).run(&[]);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.arrived(), 0);
        assert_eq!(r.completed(), 0);
    }

    #[test]
    fn unsorted_job_slices_replay_in_heap_order() {
        // The heap processed arrivals by (time, index) no matter the
        // slice order; the streaming engine must match.
        let p = vec![
            profile("a", 100, 0, vec![30]),
            profile("b", 80, 20, vec![50]),
        ];
        let pf = platform();
        let mut jobs = vec![
            job(0, 0, 500, 100, 0, &p[0].config),
            job(1, 1, 20, 80, 20, &p[1].config),
            job(2, 0, 20, 100, 0, &p[0].config),
            job(3, 1, 700, 80, 20, &p[1].config),
        ];
        let streamed = sim(&p, &pf).run(&jobs);
        let mut expect = oracle::run_heap(
            &p,
            &jobs,
            &pf,
            &Fcfs,
            SimConfig::default(),
            SketchMode::Auto,
        );
        // The heap oracle has no calendar queue, so its `queue` block is
        // zeroed; adopt the engine's before the bit-for-bit compare.
        expect.queue = streamed.queue;
        assert_eq!(streamed, expect);
        // Equal-arrival ties keep slice order even after the swap.
        jobs.swap(1, 2);
        let swapped = sim(&p, &pf).run(&jobs);
        let mut expect = oracle::run_heap(
            &p,
            &jobs,
            &pf,
            &Fcfs,
            SimConfig::default(),
            SketchMode::Auto,
        );
        expect.queue = swapped.queue;
        assert_eq!(swapped, expect);
    }

    #[test]
    fn deprecated_shims_route_through_the_builder() {
        let p = vec![profile("a", 100, 40, vec![30])];
        let jobs = vec![job(0, 0, 5, 100, 40, &p[0].config)];
        let pf = platform();
        #[allow(deprecated)]
        let shim = run_simulation(&p, &jobs, &pf, &Fcfs, &SimConfig::default());
        assert_eq!(shim, sim(&p, &pf).run(&jobs));
        let spec = WorkloadSpec::uniform(7, 24, &p, 110);
        #[allow(deprecated)]
        let shim = simulate_mix(&p, &spec, &pf, &Fcfs, &SimConfig::default());
        assert_eq!(shim, sim(&p, &pf).run_mix(&spec));
    }

    /// The tentpole acceptance test: the calendar engine is bit-identical
    /// (full `RuntimeReport`) to the retained heap oracle across seeds ×
    /// all four policies × `SimConfig` variants × sketch modes.
    #[test]
    fn calendar_engine_matches_heap_oracle_bit_for_bit() {
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ];
        let pf = platform();
        let policies: [&dyn SchedulePolicy; 4] =
            [&Fcfs, &ShortestJobFirst, &PriorityFirst, &ConfigAffinity];
        let configs = [
            SimConfig::default(),
            SimConfig {
                config_cache: false,
                ..SimConfig::default()
            },
            SimConfig {
                prefetch: true,
                ..SimConfig::default()
            },
            SimConfig {
                queue_bound: NonZeroUsize::new(3),
                ..SimConfig::default()
            },
        ];
        for seed in [1u64, 7, 42, 2004] {
            let spec = WorkloadSpec {
                seed,
                jobs: 300,
                mean_interarrival: 9_000,
                mix: vec![
                    AppShare { app: 0, weight: 3 },
                    AppShare { app: 1, weight: 1 },
                    AppShare { app: 2, weight: 2 },
                ],
            };
            let jobs = spec.generate(&profiles);
            for policy in policies {
                for config in &configs {
                    for mode in [SketchMode::Auto, SketchMode::Sketched] {
                        let calendar = Simulation::new(&pf)
                            .profiles(&profiles)
                            .policy(policy)
                            .config(*config)
                            .sketch_mode(mode)
                            .run(&jobs);
                        let mut heap =
                            oracle::run_heap(&profiles, &jobs, &pf, policy, *config, mode);
                        // The oracle has no calendar queue to report on.
                        heap.queue = calendar.queue;
                        assert_eq!(
                            calendar,
                            heap,
                            "divergence: seed {seed}, policy {}, config {config:?}, {mode:?}",
                            policy.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_run_matches_batch_run() {
        let profiles = vec![
            AppProfile::synthetic("a", 2, 5_000, 1_500, vec![400]),
            AppProfile::synthetic("b", 0, 40_000, 9_000, vec![900]),
        ];
        let pf = platform();
        let spec = WorkloadSpec::uniform(42, 500, &profiles, 120);
        let jobs = spec.generate(&profiles);
        for mode in [SketchMode::Auto, SketchMode::Sketched, SketchMode::Exact] {
            let s = Simulation::new(&pf)
                .profiles(&profiles)
                .policy(&ShortestJobFirst)
                .sketch_mode(mode);
            assert_eq!(s.run(&jobs), s.run_mix(&spec), "mode {mode:?}");
        }
    }

    #[test]
    fn inert_faults_leave_reports_bit_identical() {
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
        ];
        let pf = platform();
        let spec = WorkloadSpec::uniform(42, 200, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let policies: [&dyn SchedulePolicy; 4] =
            [&Fcfs, &ShortestJobFirst, &PriorityFirst, &ConfigAffinity];
        for policy in policies {
            let base = Simulation::new(&pf).profiles(&profiles).policy(policy);
            let plain = base.run(&jobs);
            assert_eq!(
                plain,
                base.faults(FaultSpec::none()).run(&jobs),
                "attaching the inert spec must change nothing ({})",
                policy.name()
            );
            // Even an exotic recovery policy is behaviour-neutral while
            // the spec is inert — only the recorded metadata differs.
            let exotic = RecoveryPolicy {
                max_retries: 99,
                degrade: true,
                ..RecoveryPolicy::default()
            };
            let mut faulted = base.faults(FaultSpec::none()).recovery(exotic).run(&jobs);
            assert_eq!(faulted.recovery, exotic);
            faulted.recovery = plain.recovery;
            assert_eq!(plain, faulted, "policy {}", policy.name());
        }
    }

    #[test]
    fn faulted_runs_are_bit_deterministic_and_stream_invariant() {
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ];
        let pf = platform();
        let spec = WorkloadSpec::uniform(2004, 300, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let mut faults = FaultSpec::uniform(7, 150);
        faults.deadline = std::num::NonZeroU64::new(40_000_000);
        for degrade in [false, true] {
            let recovery = RecoveryPolicy {
                degrade,
                ..RecoveryPolicy::default()
            };
            let s = Simulation::new(&pf)
                .profiles(&profiles)
                .policy(&ConfigAffinity)
                .faults(faults)
                .recovery(recovery);
            let a = s.run(&jobs);
            assert!(a.reliability.injected > 0, "faults must actually fire");
            assert_eq!(a, s.run(&jobs), "same inputs, same report");
            assert_eq!(a, s.run_mix(&spec), "batch and streaming runs agree");
        }
    }

    #[test]
    fn exhausted_fabric_retries_abort_or_degrade() {
        let p = vec![profile("a", 100, 40, vec![30])];
        let jobs = vec![job(0, 0, 0, 100, 40, &p[0].config)];
        let pf = platform();
        let mut fs = FaultSpec::none();
        fs.load_fail_permille = 1000; // every load attempt fails
        let recovery = RecoveryPolicy {
            max_retries: 2,
            ..RecoveryPolicy::default()
        };
        let abort = sim(&p, &pf).faults(fs).recovery(recovery).run(&jobs);
        assert_eq!(abort.completed(), 0);
        assert_eq!(abort.reliability.aborted, 1);
        assert_eq!(abort.reliability.load_failures, 3, "initial + 2 retries");
        assert_eq!(abort.reliability.retries, 2);
        assert_eq!(abort.reliability.injected, 3);
        assert_eq!(abort.reconfig_loads, 0, "no load ever succeeded");
        assert_eq!(abort.reliability.fault_lost_cycles, 3 * 40);

        let degrade = sim(&p, &pf)
            .faults(fs)
            .recovery(RecoveryPolicy {
                degrade: true,
                ..recovery
            })
            .run(&jobs);
        assert_eq!(degrade.completed(), 1, "degradation saves the job");
        assert_eq!(degrade.reliability.degraded, 1);
        assert_eq!(degrade.reliability.aborted, 0);
        // Loads fail at 40, 336, 888 (backoff 256 then 512 between
        // attempts, 40-cycle stall each); the fallback path then prices
        // the job at 40 + 4*100 = 440 CGC cycles.
        assert_eq!(degrade.makespan, 888 + 440);
        assert_eq!(degrade.reliability.faulted_completed, 1);
        assert_eq!(degrade.reliability.clean_completed, 0);
    }

    #[test]
    fn transient_kills_waste_the_drawn_fraction() {
        let p = vec![profile("a", 1_000, 0, vec![])];
        let jobs = vec![job(0, 0, 0, 1_000, 0, &p[0].config)];
        let pf = platform();
        let mut fs = FaultSpec::none();
        fs.transient_permille = 1000; // every fabric attempt is killed
        let r = sim(&p, &pf)
            .faults(fs)
            .recovery(RecoveryPolicy {
                max_retries: 0,
                ..RecoveryPolicy::default()
            })
            .run(&jobs);
        assert_eq!(r.reliability.fabric_kills, 1);
        assert_eq!(r.reliability.aborted, 1);
        assert_eq!(r.reliability.retries, 0);
        assert!(r.reliability.fault_lost_cycles < 1_000, "partial phase");
        assert_eq!(r.fpga_busy_cycles, 0, "killed work is not busy time");
    }

    #[test]
    fn slot_outages_down_the_slot_until_repair() {
        // Zero fine phase: jobs pass straight to the CGC stage.
        let p = vec![profile("a", 0, 100, vec![])];
        let jobs = vec![job(0, 0, 0, 0, 100, &p[0].config)];
        let pf = platform();
        let mut fs = FaultSpec::none();
        fs.outage_permille = 1000; // every regular coarse attempt dies
        fs.repair_cycles = 5_000;
        let recovery = RecoveryPolicy {
            max_retries: 1,
            degrade: true,
            ..RecoveryPolicy::default()
        };
        let r = sim(&p, &pf).faults(fs).recovery(recovery).run(&jobs);
        assert_eq!(r.reliability.slot_outages, 2, "attempt 0 and its retry");
        assert_eq!(r.reliability.retries, 1);
        assert_eq!(r.reliability.degraded, 1, "exhaustion degrades");
        assert_eq!(r.completed(), 1, "the fallback path is fault-immune");
        assert_eq!(r.reliability.slot_downtime_cycles, 10_000);

        let no_degrade = sim(&p, &pf)
            .faults(fs)
            .recovery(RecoveryPolicy {
                degrade: false,
                ..recovery
            })
            .run(&jobs);
        assert_eq!(no_degrade.completed(), 0);
        assert_eq!(no_degrade.reliability.aborted, 1);
    }

    #[test]
    fn deadlines_reap_only_still_queued_jobs() {
        let p = vec![profile("a", 1_000, 0, vec![])];
        // Job 0 seizes the fabric at t=0 (committed); jobs 1 and 2 queue
        // behind it and are still waiting at their deadlines.
        let jobs: Vec<Job> = (0..3)
            .map(|i| job(i, 0, i * 10, 1_000, 0, &p[0].config))
            .collect();
        let pf = platform();
        let mut fs = FaultSpec::none();
        fs.deadline = std::num::NonZeroU64::new(500);
        let r = sim(&p, &pf).faults(fs).run(&jobs);
        assert_eq!(r.completed(), 1, "the dispatched job runs to completion");
        assert_eq!(r.reliability.deadline_misses, 2);
        assert_eq!(r.makespan, 1_000);
        assert_eq!(
            r.arrived(),
            r.completed() + r.reliability.deadline_misses,
            "every job is accounted for"
        );
        // A generous deadline reaps nothing and changes nothing else.
        fs.deadline = std::num::NonZeroU64::new(1 << 40);
        let generous = sim(&p, &pf).faults(fs).run(&jobs);
        assert_eq!(generous.reliability.deadline_misses, 0);
        assert_eq!(generous.completed(), 3);
    }

    #[test]
    fn full_fabric_region_plan_is_bit_identical_to_the_scalar_pool() {
        use amdrel_floorplan::FabricGrid;
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ];
        let pf = platform();
        let plan = RegionPlan::new(&profiles, &FabricGrid::full(1050));
        assert!(!plan.is_partial());
        let spec = WorkloadSpec::uniform(42, 300, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let policies: [&dyn SchedulePolicy; 4] =
            [&Fcfs, &ShortestJobFirst, &PriorityFirst, &ConfigAffinity];
        let configs = [
            SimConfig::default(),
            SimConfig {
                config_cache: false,
                ..SimConfig::default()
            },
            SimConfig {
                prefetch: true,
                ..SimConfig::default()
            },
        ];
        for policy in policies {
            for config in &configs {
                let base = Simulation::new(&pf)
                    .profiles(&profiles)
                    .policy(policy)
                    .config(*config);
                assert_eq!(
                    base.run(&jobs),
                    base.regions(&plan).run(&jobs),
                    "scalar-pool identity broke: policy {}, config {config:?}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn partial_reconfiguration_beats_streamed_loads_on_a_thrashing_mix() {
        use amdrel_floorplan::FabricGrid;
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ];
        let pf = platform();
        let plan = RegionPlan::new(&profiles, &FabricGrid::uniform(1050, 4));
        assert!(plan.is_partial());
        let spec = WorkloadSpec::uniform(42, 300, &profiles, 120);
        let jobs = spec.generate(&profiles);
        let policies: [&dyn SchedulePolicy; 4] =
            [&Fcfs, &ShortestJobFirst, &PriorityFirst, &ConfigAffinity];
        for policy in policies {
            let base = Simulation::new(&pf).profiles(&profiles).policy(policy);
            let streamed = base.run(&jobs);
            let region = base.regions(&plan).run(&jobs);
            // Tenants resident in disjoint regions stop scrubbing each
            // other: after each tenant's first load the fabric switches
            // apps stall-free, while the scalar pool reloads every swap.
            assert!(
                region.reconfig_stall_cycles < streamed.reconfig_stall_cycles,
                "policy {}: region stall {} !< streamed stall {}",
                policy.name(),
                region.reconfig_stall_cycles,
                streamed.reconfig_stall_cycles
            );
            assert!(
                region.reconfig_loads < streamed.reconfig_loads,
                "policy {}: region loads {} !< streamed loads {}",
                policy.name(),
                region.reconfig_loads,
                streamed.reconfig_loads
            );
            assert_eq!(region.completed(), streamed.completed());
            // Region runs replay bit-for-bit too.
            assert_eq!(region, base.regions(&plan).run(&jobs));
        }
    }

    #[test]
    fn region_load_faults_scrub_only_the_touched_regions() {
        use amdrel_floorplan::FabricGrid;
        let profiles = vec![
            AppProfile::synthetic("a", 0, 1_000, 0, vec![100]),
            AppProfile::synthetic("b", 0, 1_000, 0, vec![120]),
        ];
        let pf = platform();
        let plan = RegionPlan::new(&profiles, &FabricGrid::uniform(1050, 4));
        // a at 0, b arrives after a's chain: a loads, b's first load
        // fails once (scrubbing only b's regions), retries and succeeds;
        // a's second job re-enters warm — its regions were untouched.
        let jobs = vec![
            job(0, 0, 0, 1_000, 0, &profiles[0].config),
            job(1, 1, 2_000, 1_000, 0, &profiles[1].config),
            job(2, 0, 6_000, 1_000, 0, &profiles[0].config),
        ];
        let mut fs = FaultSpec::none();
        fs.load_fail_permille = 1000; // every load attempt fails
        let r = sim(&profiles, &pf)
            .regions(&plan)
            .faults(fs)
            .recovery(RecoveryPolicy {
                max_retries: 0,
                degrade: false,
                ..RecoveryPolicy::default()
            })
            .run(&jobs);
        // Job 0 and job 1 both die on their cold loads; job 2 is cold
        // again only if its region was scrubbed — it was (its own app's
        // load failed), so three load failures total.
        assert_eq!(r.reliability.load_failures, 3);
        assert_eq!(r.completed(), 0);

        // Fault-free, the second "a" job re-enters warm: 2 loads total.
        let clean = sim(&profiles, &pf).regions(&plan).run(&jobs);
        assert_eq!(clean.reconfig_loads, 2);
        assert_eq!(clean.completed(), 3);
    }

    #[test]
    fn sketched_reports_record_their_provenance() {
        let p = vec![profile("a", 500, 0, vec![])];
        let jobs: Vec<Job> = (0..8)
            .map(|i| job(i, 0, i * 10, 500, 0, &p[0].config))
            .collect();
        let pf = platform();
        let sketched = sim(&p, &pf).sketch_mode(SketchMode::Sketched).run(&jobs);
        assert_eq!(sketched.latency_source, LatencySource::Sketched);
        let exact = sim(&p, &pf).run(&jobs);
        assert_eq!(exact.latency_source, LatencySource::Exact);
        // Counters are representation-independent; percentiles stay
        // within the sketch bound.
        assert_eq!(sketched.makespan, exact.makespan);
        assert_eq!(sketched.completed(), exact.completed());
        assert!(sketched.p95_latency >= exact.p95_latency);
        assert!(sketched.p95_latency - exact.p95_latency <= exact.p95_latency >> 7);
    }
}
