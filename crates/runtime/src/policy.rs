//! Pluggable scheduling policies for the fabric dispatch queue.
//!
//! A policy picks which waiting job the FPGA serves next whenever the
//! fabric frees up. Policies are pure functions of the queue contents
//! and the currently loaded configuration — they consume no randomness,
//! so a seeded workload replays bit-for-bit under any policy.

use crate::profile::ConfigId;
use crate::workload::Job;

/// Selects the next job to dispatch from the waiting queue.
///
/// `queue` is non-empty but in **unspecified order** (the simulator
/// removes dispatched jobs with `swap_remove`); policies must rank by
/// job *fields*, never by queue position. `loaded` is the configuration
/// currently resident on the fabric (None before the first dispatch).
/// The returned index must be `< queue.len()`. Ties must be broken
/// deterministically — every built-in policy falls back to the arrival
/// sequence number [`Job::id`].
pub trait SchedulePolicy: std::fmt::Debug + Sync {
    /// Short lowercase identifier (CLI value, report key).
    fn name(&self) -> &'static str;
    /// Pick the index of the next job in `queue`.
    fn pick(&self, queue: &[Job], loaded: Option<ConfigId>) -> usize;
}

/// First-come first-served: strict arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulePolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&self, queue: &[Job], _loaded: Option<ConfigId>) -> usize {
        index_min_by_key(queue, |j| j.id)
    }
}

/// Shortest job first: smallest total service demand, arrival order on
/// ties. Classic mean/percentile latency winner under mixed job sizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl SchedulePolicy for ShortestJobFirst {
    fn name(&self) -> &'static str {
        "sjf"
    }

    fn pick(&self, queue: &[Job], _loaded: Option<ConfigId>) -> usize {
        index_min_by_key(queue, |j| (j.service_cycles(), j.id))
    }
}

/// Highest priority first (larger `priority` is more urgent), arrival
/// order within a priority class.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityFirst;

impl SchedulePolicy for PriorityFirst {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn pick(&self, queue: &[Job], _loaded: Option<ConfigId>) -> usize {
        index_min_by_key(queue, |j| (std::cmp::Reverse(j.priority), j.id))
    }
}

/// Configuration affinity: among the waiting jobs, prefer one whose
/// configuration is already loaded (saving a reconfiguration), falling
/// back to arrival order. A simple stall-aware refinement of FCFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfigAffinity;

impl SchedulePolicy for ConfigAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn pick(&self, queue: &[Job], loaded: Option<ConfigId>) -> usize {
        index_min_by_key(queue, |j| (loaded != Some(j.config), j.id))
    }
}

fn index_min_by_key<K: Ord>(queue: &[Job], mut key: impl FnMut(&Job) -> K) -> usize {
    assert!(
        !queue.is_empty(),
        "policies are only consulted on non-empty queues"
    );
    let mut best = 0;
    let mut best_key = key(&queue[0]);
    for (i, job) in queue.iter().enumerate().skip(1) {
        let k = key(job);
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// Look up a built-in policy by its [`SchedulePolicy::name`].
pub fn policy_by_name(name: &str) -> Option<Box<dyn SchedulePolicy>> {
    match name {
        "fcfs" => Some(Box::new(Fcfs)),
        "sjf" => Some(Box::new(ShortestJobFirst)),
        "priority" => Some(Box::new(PriorityFirst)),
        "affinity" => Some(Box::new(ConfigAffinity)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, priority: u8, fine: u64, config: u64) -> Job {
        Job {
            id,
            app: 0,
            arrival: id,
            priority,
            fine_cycles: fine,
            coarse_cycles: 0,
            config: ConfigId(config),
        }
    }

    #[test]
    fn fcfs_takes_lowest_sequence() {
        let q = [job(5, 0, 10, 1), job(2, 9, 99, 2), job(7, 0, 1, 3)];
        assert_eq!(Fcfs.pick(&q, None), 1);
    }

    #[test]
    fn sjf_takes_shortest_then_sequence() {
        let q = [job(1, 0, 50, 1), job(2, 0, 10, 2), job(3, 0, 10, 3)];
        assert_eq!(ShortestJobFirst.pick(&q, None), 1);
    }

    #[test]
    fn priority_takes_most_urgent() {
        let q = [job(1, 1, 50, 1), job(2, 3, 99, 2), job(3, 3, 1, 3)];
        assert_eq!(PriorityFirst.pick(&q, None), 1, "ties broken by arrival");
    }

    #[test]
    fn affinity_prefers_loaded_config() {
        let q = [job(1, 0, 50, 1), job(2, 0, 10, 2)];
        assert_eq!(ConfigAffinity.pick(&q, Some(ConfigId(2))), 1);
        assert_eq!(
            ConfigAffinity.pick(&q, Some(ConfigId(9))),
            0,
            "no match → FCFS"
        );
        assert_eq!(ConfigAffinity.pick(&q, None), 0);
    }

    #[test]
    fn lookup_by_name() {
        for name in ["fcfs", "sjf", "priority", "affinity"] {
            assert_eq!(policy_by_name(name).unwrap().name(), name);
        }
        assert!(policy_by_name("psychic").is_none());
    }
}
