//! The calendar-queue event scheduler.
//!
//! A classic binary heap prices every operation at O(log n). A calendar
//! queue (Brown 1988) — the event-structure of choice for discrete-event
//! simulators — hashes each event by time into a ring of day buckets and
//! pops by walking the ring, which is O(1) amortised when events are
//! reasonably spread. This implementation adds a timing-wheel-style
//! occupancy bitmap so the walk skips empty days in one `u64` scan per
//! word instead of bucket by bucket, keeping pops cheap even when the
//! next event is many empty days ahead (reconfiguration lulls, sparse
//! arrival tails).
//!
//! Ordering is **total and deterministic**: events are keyed by
//! `(time, seq)` exactly like the retained heap oracle, and the pop
//! always selects the minimum key, so insertion order and bucket layout
//! never influence the processing order — the property the differential
//! tests in `sim.rs` pin down.

use serde::{Deserialize, Serialize};

/// One scheduled event: `(time, seq)` key plus payload.
#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

/// Observable internals of the calendar queue — the event-structure
/// half of a [`RuntimeReport`](crate::RuntimeReport)'s `metrics`.
///
/// All fields derive purely from the deterministic event stream, so
/// two runs of one scenario snapshot identical stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CalendarStats {
    /// Events scheduled over the queue's lifetime (grow-time rehashing
    /// does not recount them).
    pub events: u64,
    /// Ring-doubling rehashes performed.
    pub rehashes: u64,
    /// Peak simultaneous occupancy.
    pub peak_occupancy: u64,
    /// Day width in cycles (a power of two derived from the width hint).
    pub day_width: u64,
}

/// A calendar queue over payloads `T`, totally ordered by `(time, seq)`.
///
/// Days are `width` cycles wide; the ring holds `buckets.len()` days and
/// wraps (an event `k` full rotations ahead shares a bucket with the
/// current rotation and is filtered by its absolute time). The queue
/// grows its ring when occupancy exceeds four events per bucket, keeping
/// bucket scans O(1).
#[derive(Debug)]
pub(crate) struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: Vec<u64>,
    /// Day width in cycles (a power of two, so day math is shifts).
    width_shift: u32,
    /// Ring mask (`buckets.len() - 1`; the length is a power of two).
    mask: u64,
    /// The day of the most recent pop: pops are monotone in time, so the
    /// ring walk starts here.
    current_day: u64,
    len: usize,
    /// Lifetime push count (external pushes only; see [`CalendarStats`]).
    events: u64,
    /// Ring-doubling count.
    rehashes: u64,
    /// Peak `len` observed.
    peak: usize,
}

impl<T: Copy> CalendarQueue<T> {
    /// An empty queue whose day width is sized from `width_hint` (the
    /// expected spacing between events, e.g. the mean service time).
    pub(crate) fn new(width_hint: u64) -> Self {
        // Round the hint up to a power of two so day math is a shift;
        // clamp so `time >> width_shift` always stays meaningful.
        let width_shift = (64 - width_hint.max(1).saturating_sub(1).leading_zeros()).min(40);
        let nbuckets = 64usize;
        CalendarQueue {
            buckets: vec![Vec::new(); nbuckets],
            occupied: vec![0; nbuckets.div_ceil(64)],
            width_shift,
            mask: (nbuckets - 1) as u64,
            current_day: 0,
            len: 0,
            events: 0,
            rehashes: 0,
            peak: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Snapshot the lifetime counters.
    pub(crate) fn stats(&self) -> CalendarStats {
        CalendarStats {
            events: self.events,
            rehashes: self.rehashes,
            peak_occupancy: self.peak as u64,
            day_width: 1u64 << self.width_shift,
        }
    }

    fn day_of(&self, time: u64) -> u64 {
        time >> self.width_shift
    }

    fn bucket_of(&self, day: u64) -> usize {
        (day & self.mask) as usize
    }

    /// Schedule `item` at `time` with tie-breaker `seq`.
    pub(crate) fn push(&mut self, time: u64, seq: u64, item: T) {
        if self.len == self.buckets.len() * 4 {
            self.grow();
        }
        let b = self.bucket_of(self.day_of(time));
        self.buckets[b].push(Entry { time, seq, item });
        self.occupied[b / 64] |= 1 << (b % 64);
        self.len += 1;
        self.events += 1;
        self.peak = self.peak.max(self.len);
    }

    /// Double the ring and rehash every event (amortised O(1) per push).
    fn grow(&mut self) {
        let nbuckets = self.buckets.len() * 2;
        let mut grown = CalendarQueue {
            buckets: vec![Vec::new(); nbuckets],
            occupied: vec![0; nbuckets.div_ceil(64)],
            width_shift: self.width_shift,
            mask: (nbuckets - 1) as u64,
            current_day: self.current_day,
            len: 0,
            events: 0,
            rehashes: 0,
            peak: 0,
        };
        for bucket in &self.buckets {
            for e in bucket {
                grown.push(e.time, e.seq, e.item);
            }
        }
        // Rehashing moves events; it does not re-schedule them. Carry the
        // lifetime counters over instead of the re-push tallies.
        grown.events = self.events;
        grown.rehashes = self.rehashes + 1;
        grown.peak = self.peak;
        *self = grown;
    }

    /// The minimum `(time, seq)` key, or `None` when empty.
    pub(crate) fn peek_key(&self) -> Option<(u64, u64)> {
        self.find_min().map(|(b, i)| {
            let e = &self.buckets[b][i];
            (e.time, e.seq)
        })
    }

    /// Remove and return the minimum-key event.
    pub(crate) fn pop(&mut self) -> Option<(u64, u64, T)> {
        let (b, i) = self.find_min()?;
        let e = self.buckets[b].swap_remove(i);
        if self.buckets[b].is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.len -= 1;
        debug_assert!(self.day_of(e.time) >= self.current_day);
        self.current_day = self.day_of(e.time);
        Some((e.time, e.seq, e.item))
    }

    /// Locate the minimum-key event: walk occupied buckets in ring order
    /// from the current day; the first day that owns an event in the
    /// current rotation holds the minimum. If a full rotation turns up
    /// only future-rotation events, fall back to a direct min scan over
    /// the (≤ len) occupied buckets and jump the cursor to it.
    fn find_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let start = self.bucket_of(self.current_day);
        // One rotation from the cursor, in two linear segments: ring
        // offsets 0..nbuckets-start live in buckets start.., offsets
        // nbuckets-start.. wrap into buckets 0..start. Each occupied
        // bucket is visited at most once via the bitmap.
        let mut b = start;
        while let Some(nb) = self.next_occupied_linear(b) {
            let day = self.current_day + (nb - start) as u64;
            if let Some(i) = self.min_in_bucket(nb, Some(day)) {
                return Some((nb, i));
            }
            b = nb + 1;
        }
        let mut b = 0;
        while b < start {
            let Some(nb) = self.next_occupied_linear(b) else {
                break;
            };
            if nb >= start {
                break;
            }
            let day = self.current_day + (nbuckets - start + nb) as u64;
            if let Some(i) = self.min_in_bucket(nb, Some(day)) {
                return Some((nb, i));
            }
            b = nb + 1;
        }
        // Sparse case: every event lies at least one full rotation out.
        // Direct search over occupied buckets (≤ len of them) and jump.
        let mut best: Option<(u64, u64, usize, usize)> = None;
        let mut b = 0;
        while let Some(next) = self.next_occupied_linear(b) {
            if let Some(i) = self.min_in_bucket(next, None) {
                let e = &self.buckets[next][i];
                if best.is_none_or(|(t, s, _, _)| (e.time, e.seq) < (t, s)) {
                    best = Some((e.time, e.seq, next, i));
                }
            }
            b = next + 1;
            if b >= self.buckets.len() {
                break;
            }
        }
        best.map(|(_, _, bucket, idx)| (bucket, idx))
    }

    /// Index of the minimum `(time, seq)` entry in `bucket`, optionally
    /// restricted to events of exactly `day` (the current-rotation
    /// filter).
    fn min_in_bucket(&self, bucket: usize, day: Option<u64>) -> Option<usize> {
        let mut best: Option<(u64, u64, usize)> = None;
        for (i, e) in self.buckets[bucket].iter().enumerate() {
            if let Some(d) = day {
                if self.day_of(e.time) != d {
                    continue;
                }
            }
            if best.is_none_or(|(t, s, _)| (e.time, e.seq) < (t, s)) {
                best = Some((e.time, e.seq, i));
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// First occupied bucket at index ≥ `from`, without wrapping.
    fn next_occupied_linear(&self, from: usize) -> Option<usize> {
        if from >= self.buckets.len() {
            return None;
        }
        let (mut word, bit) = (from / 64, from % 64);
        let mut bits = self.occupied[word] & (!0u64 << bit);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain the queue, asserting the pop order is exactly the sorted
    /// `(time, seq)` order.
    fn drain_sorted(q: &mut CalendarQueue<u32>, mut expect: Vec<(u64, u64)>) {
        expect.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, s, _)) = q.pop() {
            popped.push((t, s));
        }
        assert_eq!(popped, expect);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pops_in_total_key_order() {
        let mut q = CalendarQueue::new(10);
        let keys = [
            (50u64, 0u64),
            (10, 1),
            (10, 0),
            (1_000_000, 2),
            (0, 3),
            (50, 4),
        ];
        for &(t, s) in &keys {
            q.push(t, s, 0);
        }
        assert_eq!(q.peek_key(), Some((0, 3)));
        drain_sorted(&mut q, keys.to_vec());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = CalendarQueue::new(100);
        q.push(5, 0, 0);
        q.push(700, 1, 0);
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((5, 0)));
        // Push an event earlier than the pending one but after the
        // popped one (the simulator only schedules at or after `now`).
        q.push(6, 2, 0);
        q.push(1 << 40, 3, 0);
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((6, 2)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((700, 1)));
        assert_eq!(q.peek_key(), Some((1 << 40, 3)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((1 << 40, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn growth_rehashes_and_preserves_order() {
        let mut q = CalendarQueue::new(1);
        let mut keys = Vec::new();
        // 4 × 64 initial capacity threshold → several growth rounds.
        for s in 0..2_000u64 {
            let t = (s * 7919) % 50_021;
            q.push(t, s, 0);
            keys.push((t, s));
        }
        assert_eq!(q.len(), 2_000);
        let stats = q.stats();
        assert_eq!(stats.events, 2_000, "rehashing must not recount events");
        assert_eq!(stats.rehashes, 3, "grow at 256, 512 and 1024 pending");
        assert_eq!(stats.peak_occupancy, 2_000);
        assert_eq!(stats.day_width, 1);
        drain_sorted(&mut q, keys);
        assert_eq!(q.stats().peak_occupancy, 2_000, "peak survives the drain");
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new(8);
        // All events many rotations beyond the cursor.
        q.push(u64::MAX - 3, 1, 0);
        q.push(1 << 50, 0, 0);
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((1 << 50, 0)));
        assert_eq!(q.pop().map(|(t, s, _)| (t, s)), Some((u64::MAX - 3, 1)));
    }

    #[test]
    fn equal_times_break_ties_by_seq_not_insertion() {
        let mut q = CalendarQueue::new(16);
        q.push(42, 9, 1);
        q.push(42, 3, 2);
        q.push(42, 7, 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, s, _)| s)).collect();
        assert_eq!(order, vec![3, 7, 9]);
    }
}
