//! Seeded, bit-deterministic fault injection and the recovery policy
//! layered on top of it.
//!
//! A [`FaultSpec`] is the fault-injection counterpart of
//! [`WorkloadSpec`](crate::WorkloadSpec): all stochasticity is drawn
//! from forked [`SplitMix64`] streams keyed by the spec's own seed, so
//! fault decisions are
//!
//! * **policy-independent** — a decision is a pure function of
//!   `(fault seed, channel, job id, attempt)`; nothing the scheduler
//!   does perturbs it;
//! * **prefix-stable** — growing or shrinking the job count never
//!   changes any other job's fault draws (each job indexes its own fork
//!   of the per-channel stream in O(1), exactly the discipline
//!   `WorkloadSpec` uses for arrivals/picks/jitter);
//! * **zero-rate inert** — with every rate at zero and no deadline, no
//!   stream is ever consulted and the simulator's behaviour is
//!   byte-identical to a fault-free run.
//!
//! Three fault channels plus a deadline are modelled:
//!
//! 1. **reconfiguration-load failures** — a bitstream load aborts after
//!    stalling the fabric for its full streaming time, scrubbing the
//!    loaded configuration;
//! 2. **transient fabric faults** — an in-flight fine-grain phase is
//!    killed partway (the completed fraction is drawn from the same
//!    per-attempt stream);
//! 3. **CGC slot outages** — a coarse phase is killed partway and the
//!    slot stays down for [`FaultSpec::repair_cycles`];
//! 4. **per-job deadlines** — a job still waiting for the fabric at
//!    `arrival + deadline` is reaped.
//!
//! [`RecoveryPolicy`] decides what the engine does about it: bounded
//! retry with a deterministic exponential
//! [`BackoffSchedule`](crate::BackoffSchedule), and — when retries are
//! exhausted — graceful degradation to the application's
//! coarse-grain-only fallback path
//! ([`AppProfile::fallback_cycles`](crate::AppProfile::fallback_cycles))
//! instead of dropping the job.

use crate::backoff::BackoffSchedule;
use amdrel_core::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::num::NonZeroU64;

/// SplitMix64's additive constant (the golden-ratio gamma). Advancing a
/// stream's state by `i * GAMMA` is exactly "skip to position `i`", so
/// `SplitMix64::new(key + i * GAMMA).next_u64()` is the fork the stream
/// would hand out at position `i` — an O(1) random-access fork.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fault channel indices into the master stream (fixed fork order; new
/// channels append so existing draws never move).
const CH_LOAD: u64 = 0;
const CH_TRANSIENT: u64 = 1;
const CH_OUTAGE: u64 = 2;

/// The `index`-th fork of the stream keyed by `key`, in O(1).
fn fork_at(key: u64, index: u64) -> u64 {
    SplitMix64::new(key.wrapping_add(index.wrapping_mul(GAMMA))).next_u64()
}

/// Multiply `cycles` by `permille`/1000 without overflow.
pub(crate) fn permille_of(cycles: u64, permille: u64) -> u64 {
    ((u128::from(cycles) * u128::from(permille)) / 1000) as u64
}

/// A seeded fault-injection specification. All rates are permille
/// (0..=1000) per *attempt*; `FaultSpec::none()` injects nothing and
/// leaves every report byte-identical to a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Master seed the per-channel streams fork from (independent of
    /// the workload seed).
    pub seed: u64,
    /// Probability (permille) that one bitstream-load attempt fails.
    pub load_fail_permille: u16,
    /// Probability (permille) that one fine-grain execution attempt is
    /// killed by a transient fabric fault.
    pub transient_permille: u16,
    /// Probability (permille) that one coarse-grain execution attempt
    /// is killed by a CGC slot outage.
    pub outage_permille: u16,
    /// Cycles a failed CGC slot stays down before repair returns it to
    /// the pool.
    pub repair_cycles: u64,
    /// Relative per-job deadline: a job still *queued* for the fabric
    /// at `arrival + deadline` is reaped (in-flight and coarse-phase
    /// jobs are committed and run to completion). `None` disables
    /// deadlines.
    pub deadline: Option<NonZeroU64>,
}

impl FaultSpec {
    /// The inert spec: no faults, no deadlines. Simulating under it is
    /// byte-identical to not attaching a spec at all.
    pub fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            load_fail_permille: 0,
            transient_permille: 0,
            outage_permille: 0,
            repair_cycles: 0,
            deadline: None,
        }
    }

    /// A uniform spec: the same `rate_permille` on all three fault
    /// channels, a 20 000-cycle slot repair time, no deadline.
    ///
    /// # Panics
    ///
    /// Panics if `rate_permille > 1000`.
    pub fn uniform(seed: u64, rate_permille: u16) -> FaultSpec {
        assert!(
            rate_permille <= 1000,
            "fault rate is permille (0..=1000), got {rate_permille}"
        );
        FaultSpec {
            seed,
            load_fail_permille: rate_permille,
            transient_permille: rate_permille,
            outage_permille: rate_permille,
            repair_cycles: 20_000,
            deadline: None,
        }
    }

    /// `true` if this spec can never influence a run (all rates zero,
    /// no deadline). The engine skips all fault bookkeeping in that
    /// case, which is what makes zero-rate runs byte-identical.
    pub fn is_none(&self) -> bool {
        self.load_fail_permille == 0
            && self.transient_permille == 0
            && self.outage_permille == 0
            && self.deadline.is_none()
    }

    /// The per-`(channel, job, attempt)` decision stream: channel
    /// streams fork from the master seed in fixed order, each job takes
    /// the `job`-th fork of its channel stream, each attempt the
    /// `attempt`-th fork of the job stream. Every level is O(1) and
    /// independent of every sibling, which is what buys prefix
    /// stability across job-count forks.
    fn attempt_stream(&self, channel: u64, job: u64, attempt: u32) -> SplitMix64 {
        let mut master = SplitMix64::new(self.seed);
        let mut channel_key = 0;
        for _ in 0..=channel {
            channel_key = master.next_u64();
        }
        let job_key = fork_at(channel_key, job);
        SplitMix64::new(fork_at(job_key, u64::from(attempt)))
    }

    /// Whether bitstream-load attempt `attempt` of `job` fails. Pure:
    /// the same inputs always answer the same, regardless of call order
    /// or anything else the simulator did.
    pub fn load_fails(&self, job: u64, attempt: u32) -> bool {
        self.load_fail_permille > 0
            && self.attempt_stream(CH_LOAD, job, attempt).below(1000)
                < u64::from(self.load_fail_permille)
    }

    /// Whether fine-grain execution attempt `attempt` of `job` is
    /// killed by a transient fabric fault; `Some(p)` gives the permille
    /// of the phase that completed (and is wasted) before the kill.
    pub fn fabric_kill(&self, job: u64, attempt: u32) -> Option<u64> {
        if self.transient_permille == 0 {
            return None;
        }
        let mut s = self.attempt_stream(CH_TRANSIENT, job, attempt);
        if s.below(1000) >= u64::from(self.transient_permille) {
            return None;
        }
        Some(s.below(1000))
    }

    /// Whether coarse-grain execution attempt `attempt` of `job` is
    /// killed by a CGC slot outage; `Some(p)` as in
    /// [`Self::fabric_kill`].
    pub fn slot_outage(&self, job: u64, attempt: u32) -> Option<u64> {
        if self.outage_permille == 0 {
            return None;
        }
        let mut s = self.attempt_stream(CH_OUTAGE, job, attempt);
        if s.below(1000) >= u64::from(self.outage_permille) {
            return None;
        }
        Some(s.below(1000))
    }

    /// The absolute reap time of a job arriving at `arrival`, if
    /// deadlines are enabled.
    pub fn job_deadline(&self, arrival: u64) -> Option<u64> {
        self.deadline.map(|d| arrival.saturating_add(d.get()))
    }
}

/// What the engine does when a fault fires: how often to retry, how
/// long to wait between retries, and whether exhausted jobs degrade to
/// the coarse-grain-only fallback path or abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retries granted per phase (fabric attempts and coarse attempts
    /// each get this budget). 0 means any fault immediately exhausts.
    pub max_retries: u32,
    /// Deterministic delay schedule between fabric retries.
    pub backoff: BackoffSchedule,
    /// When retries are exhausted: `true` reroutes the job to its
    /// application's coarse-grain-only fallback path (fault-immune,
    /// priced by [`AppProfile::fallback_cycles`](crate::AppProfile::fallback_cycles));
    /// `false` aborts the job.
    pub degrade: bool,
}

impl Default for RecoveryPolicy {
    /// 3 retries under the default backoff schedule, abort on
    /// exhaustion (degradation is opt-in, mirroring `--degrade`).
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff: BackoffSchedule::default(),
            degrade: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_uniform_is_not() {
        assert!(FaultSpec::none().is_none());
        assert!(FaultSpec::uniform(7, 0).is_none(), "rate 0 is inert");
        assert!(!FaultSpec::uniform(7, 1).is_none());
        let mut with_deadline = FaultSpec::none();
        with_deadline.deadline = NonZeroU64::new(1_000);
        assert!(!with_deadline.is_none(), "a deadline alone is not inert");
        for job in 0..64 {
            for attempt in 0..4 {
                assert!(!FaultSpec::none().load_fails(job, attempt));
                assert!(FaultSpec::none().fabric_kill(job, attempt).is_none());
                assert!(FaultSpec::none().slot_outage(job, attempt).is_none());
            }
        }
        assert_eq!(FaultSpec::none().job_deadline(5), None);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn uniform_rejects_rates_over_1000() {
        let _ = FaultSpec::uniform(7, 1001);
    }

    #[test]
    fn rate_1000_always_fires() {
        let spec = FaultSpec::uniform(7, 1000);
        for job in 0..64 {
            assert!(spec.load_fails(job, 0));
            let frac = spec.fabric_kill(job, 0).expect("certain kill");
            assert!(frac < 1000);
            assert!(spec.slot_outage(job, 1).is_some());
        }
    }

    #[test]
    fn decisions_are_pure_functions() {
        let spec = FaultSpec::uniform(42, 300);
        // Re-asking, and asking in any interleaving, never changes an
        // answer — there is no shared stream state to perturb.
        let first: Vec<_> = (0..128)
            .map(|j| (spec.load_fails(j, 0), spec.fabric_kill(j, 1)))
            .collect();
        let shuffled: Vec<_> = (0..128)
            .rev()
            .map(|j| (spec.load_fails(j, 0), spec.fabric_kill(j, 1)))
            .collect();
        let replay: Vec<_> = (0..128)
            .map(|j| (spec.load_fails(j, 0), spec.fabric_kill(j, 1)))
            .collect();
        assert_eq!(first, replay);
        assert_eq!(first, shuffled.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn channels_jobs_and_attempts_draw_independently() {
        let spec = FaultSpec::uniform(2004, 500);
        let load: Vec<bool> = (0..256).map(|j| spec.load_fails(j, 0)).collect();
        let transient: Vec<bool> = (0..256).map(|j| spec.fabric_kill(j, 0).is_some()).collect();
        let outage: Vec<bool> = (0..256).map(|j| spec.slot_outage(j, 0).is_some()).collect();
        assert_ne!(load, transient, "channels are distinct streams");
        assert_ne!(transient, outage);
        let attempt1: Vec<bool> = (0..256).map(|j| spec.load_fails(j, 1)).collect();
        assert_ne!(load, attempt1, "attempts are distinct draws");
        // At 500 permille all three channels fire a plausible fraction.
        for v in [&load, &transient, &outage] {
            let hits = v.iter().filter(|&&b| b).count();
            assert!((64..=192).contains(&hits), "hits {hits} of 256");
        }
    }

    #[test]
    fn seeds_move_every_channel() {
        let a = FaultSpec::uniform(1, 500);
        let b = FaultSpec::uniform(2, 500);
        let draws = |s: &FaultSpec| -> Vec<bool> { (0..256).map(|j| s.load_fails(j, 0)).collect() };
        assert_ne!(draws(&a), draws(&b));
    }

    #[test]
    fn deadline_is_arrival_relative_and_saturating() {
        let mut spec = FaultSpec::none();
        spec.deadline = NonZeroU64::new(500);
        assert_eq!(spec.job_deadline(100), Some(600));
        assert_eq!(spec.job_deadline(u64::MAX - 10), Some(u64::MAX));
    }

    #[test]
    fn default_recovery_aborts_after_three_retries() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.max_retries, 3);
        assert!(!r.degrade);
        assert_eq!(r.backoff, BackoffSchedule::default());
    }
}
