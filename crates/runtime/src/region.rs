//! Region residency for partial reconfiguration: the bridge between
//! the floorplanner and the simulator.
//!
//! A [`RegionPlan`] jointly floorplans every tenant's configuration
//! footprints (its profile's `partition_areas`) onto a
//! [`FabricGrid`], then freezes the result into the per-application
//! *residency sets* the engine consults at dispatch time: the regions
//! an application's load must reprogram, and the region areas that
//! price those loads. The plan is computed once, before the run — the
//! floorplanner is pure, so the whole run stays bit-deterministic.

use crate::profile::AppProfile;
use amdrel_floorplan::{FabricGrid, Floorplanner, Footprint, FragmentationStats};

/// A frozen joint placement of every application's configuration
/// footprints, consumed by
/// [`Simulation::regions`](crate::Simulation::regions).
///
/// # Examples
///
/// ```
/// use amdrel_floorplan::FabricGrid;
/// use amdrel_runtime::{AppProfile, RegionPlan};
///
/// let profiles = vec![
///     AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![60, 40]),
///     AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![90]),
/// ];
/// let plan = RegionPlan::new(&profiles, &FabricGrid::uniform(1050, 4));
/// assert!(plan.is_partial());
/// // Each tenant got its own residency set, so one tenant's load
/// // leaves the other's regions untouched.
/// assert_ne!(plan.touched(0), plan.touched(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionPlan {
    region_areas: Vec<u64>,
    touched: Vec<Vec<usize>>,
    stats: FragmentationStats,
}

impl RegionPlan {
    /// Floorplan `profiles` onto `grid` (owner `i` = profile index `i`)
    /// and freeze the residency sets.
    pub fn new(profiles: &[AppProfile], grid: &FabricGrid) -> RegionPlan {
        let footprints: Vec<Footprint> = profiles
            .iter()
            .enumerate()
            .flat_map(|(app, p)| {
                p.config
                    .partition_areas
                    .iter()
                    .map(move |&area| Footprint::new(app, area))
            })
            .collect();
        let placement = Floorplanner.place(grid, &footprints);
        RegionPlan {
            region_areas: placement.region_areas().to_vec(),
            touched: (0..profiles.len())
                .map(|app| placement.touched_regions(app).to_vec())
                .collect(),
            stats: placement.stats(),
        }
    }

    /// Number of regions on the underlying grid.
    pub fn regions(&self) -> usize {
        self.region_areas.len()
    }

    /// Area of region `r` — what a region-granular load pays to
    /// reprogram it.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region_area(&self, r: usize) -> u64 {
        self.region_areas[r]
    }

    /// The residency set of application `app`: sorted region indices its
    /// configuration occupies. Empty for unknown apps or apps with no
    /// configuration footprint.
    pub fn touched(&self, app: usize) -> &[usize] {
        self.touched.get(app).map_or(&[], Vec::as_slice)
    }

    /// `true` when the plan has at least two regions and so admits
    /// partial reconfiguration. A single full-fabric region is the
    /// degenerate case: the engine keeps the scalar area-pool path, so
    /// attaching such a plan is bit-identical to attaching none.
    pub fn is_partial(&self) -> bool {
        self.region_areas.len() >= 2
    }

    /// The floorplanner's placement-quality summary.
    pub fn stats(&self) -> FragmentationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<AppProfile> {
        vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
            AppProfile::synthetic("stream", 1, 12_000, 4_000, vec![600, 200, 200]),
        ]
    }

    #[test]
    fn plans_are_deterministic() {
        let p = profiles();
        let grid = FabricGrid::uniform(1050, 4);
        assert_eq!(RegionPlan::new(&p, &grid), RegionPlan::new(&p, &grid));
    }

    #[test]
    fn tenants_get_disjoint_residency_when_regions_suffice() {
        let p = profiles();
        let plan = RegionPlan::new(&p, &FabricGrid::uniform(1050, 4));
        assert!(plan.is_partial());
        assert_eq!(plan.regions(), 4);
        for a in 0..p.len() {
            assert!(!plan.touched(a).is_empty());
            for b in (a + 1)..p.len() {
                assert!(
                    plan.touched(a).iter().all(|r| !plan.touched(b).contains(r)),
                    "apps {a} and {b} share a region"
                );
            }
        }
    }

    #[test]
    fn full_fabric_plan_is_degenerate() {
        let p = profiles();
        let plan = RegionPlan::new(&p, &FabricGrid::full(1050));
        assert!(!plan.is_partial());
        assert_eq!(plan.regions(), 1);
        for a in 0..p.len() {
            assert_eq!(plan.touched(a), &[0]);
        }
    }

    #[test]
    fn unknown_apps_touch_nothing() {
        let plan = RegionPlan::new(&profiles(), &FabricGrid::uniform(1050, 4));
        assert_eq!(plan.touched(99), &[] as &[usize]);
    }
}
