//! Property tests for the streaming latency sketch: percentile error
//! bounds against exact nearest-rank on adversarial distributions, and
//! bit-determinism of sketched simulation reports across runs and job
//! counts.

use amdrel_core::rng::SplitMix64;
use amdrel_core::Platform;
use amdrel_runtime::{
    report_to_json, AppProfile, LatencySketch, LatencySource, Simulation, SketchMode, WorkloadSpec,
    SUB_BITS,
};
use proptest::prelude::*;

/// Exact nearest-rank percentile (the definition the sketch bounds).
fn exact_nearest_rank(sample: &[u64], q: u64) -> u64 {
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = (q * n).div_ceil(100).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Assert the documented sketch contract on `sample`: every queried
/// percentile is ≥ the exact value and overshoots by at most
/// `exact >> SUB_BITS` (relative error < 2^-7).
fn assert_sketch_bounds(sample: &[u64]) {
    let mut sketch = LatencySketch::new(LatencySource::Sketched);
    sample.iter().for_each(|&v| sketch.record(v));
    for q in [1u64, 10, 25, 50, 75, 90, 95, 99, 100] {
        let exact = exact_nearest_rank(sample, q);
        let approx = sketch.percentile(q);
        assert!(approx >= exact, "p{q}: sketch {approx} below exact {exact}");
        assert!(
            approx - exact <= exact >> SUB_BITS,
            "p{q}: sketch {approx} overshoots exact {exact} beyond 2^-{SUB_BITS}"
        );
    }
    assert_eq!(sketch.max(), sample.iter().copied().max().unwrap_or(0));
}

proptest! {
    /// Constant distributions: every value identical — all percentiles
    /// must land in the same bucket, so the overshoot bound still holds.
    #[test]
    fn constant_distribution_respects_the_bound(value in 0u64..u64::MAX / 2, n in 1usize..4_000) {
        assert_sketch_bounds(&vec![value; n]);
    }

    /// Bimodal distributions: two far-apart modes stress the rank
    /// boundary where a percentile jumps modes.
    #[test]
    fn bimodal_distribution_respects_the_bound(
        seed in any::<u64>(),
        low in 1u64..10_000,
        spread in 1_000u64..1_000_000_000,
        n in 2usize..4_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let high = low.saturating_add(spread);
        let sample: Vec<u64> = (0..n)
            .map(|_| if rng.below(2) == 0 { low } else { high })
            .collect();
        assert_sketch_bounds(&sample);
    }

    /// Heavy-tail distributions: most mass tiny, rare huge outliers —
    /// the regime log-bucketing exists for.
    #[test]
    fn heavy_tail_distribution_respects_the_bound(seed in any::<u64>(), n in 1usize..4_000) {
        let mut rng = SplitMix64::new(seed);
        let sample: Vec<u64> = (0..n)
            .map(|_| {
                // Pareto-ish: exponentiate a uniform magnitude draw.
                let magnitude = rng.below(50);
                (1u64 << magnitude) + rng.below((1u64 << magnitude).max(1))
            })
            .collect();
        assert_sketch_bounds(&sample);
    }

    /// Sketched simulation reports are bit-deterministic: identical
    /// inputs replay to identical reports (and identical JSON), and the
    /// workload's prefix stability survives sketching — growing the job
    /// count never rewrites the jobs already simulated.
    #[test]
    fn sketched_reports_replay_bit_identical(seed in any::<u64>(), jobs in 1usize..200) {
        let profiles = vec![
            AppProfile::synthetic("interactive", 2, 5_000, 1_500, vec![400, 300]),
            AppProfile::synthetic("batch", 0, 40_000, 9_000, vec![900]),
        ];
        let platform = Platform::paper(1500, 2);
        let spec = WorkloadSpec::uniform(seed, jobs, &profiles, 120);
        let sim = Simulation::new(&platform)
            .profiles(&profiles)
            .sketch_mode(SketchMode::Sketched);
        let a = sim.run_mix(&spec);
        let b = sim.run_mix(&spec);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(report_to_json(&a), report_to_json(&b));
        prop_assert_eq!(a.latency_source, LatencySource::Sketched);

        // Cross-job-count determinism of the underlying stream: the
        // longer run consumes a superset of the same jobs, so regenerating
        // the shorter stream after simulating is still bit-identical.
        let longer = WorkloadSpec { jobs: jobs + 64, ..spec.clone() };
        let _ = sim.run_mix(&longer);
        prop_assert_eq!(sim.run_mix(&spec), a);
    }
}
