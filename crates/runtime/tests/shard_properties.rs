//! Differential suite for the sharded runner: every property pits
//! `Simulation::shards(k)` against the retained single-threaded oracle.
//!
//! The contracts under test, in order of strength:
//!
//! * `k == 1` — and any workload whose jobs all target one application,
//!   at any `k` — is *byte*-identical to the unsharded engine: report,
//!   JSON rendering and rendered trace.
//! * At any `k`, the threaded run equals the shard-order fold of `k`
//!   independent single-threaded runs, one per shard subsequence —
//!   counters add, makespan maxes, per-app statistics pass through
//!   untouched — so the merge cannot depend on thread scheduling.
//! * Sharded runs replay bit-for-bit under every policy, live faults
//!   and region plans.
//! * The work-conservation fields are shard-count-invariant outright.
//! * [`LatencySketch::merge`] is exact: merging per-shard sketches in
//!   any grouping reproduces the whole-population sketch.

use amdrel_core::rng::SplitMix64;
use amdrel_core::Platform;
use amdrel_floorplan::FabricGrid;
use amdrel_runtime::{
    policy_by_name, report_to_json, shard_of, AppProfile, AppShare, FaultSpec, Job, LatencySketch,
    LatencySource, RecoveryPolicy, RegionPlan, Simulation, WorkloadSpec,
};
use amdrel_trace::{chrome_trace, TraceBuffer};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const POLICIES: [&str; 4] = ["fcfs", "sjf", "priority", "affinity"];

/// Expand a seed into a small heterogeneous tenant set (2–4 apps so a
/// multi-shard split is non-trivial).
fn tenants(seed: u64) -> Vec<AppProfile> {
    let mut rng = SplitMix64::new(seed);
    let n = 2 + rng.below(3) as usize;
    (0..n)
        .map(|i| {
            let parts = rng.below(4) as usize;
            let areas: Vec<u64> = (0..parts).map(|_| 50 + rng.below(400)).collect();
            let mut p = AppProfile::synthetic(
                &format!("app{i}"),
                rng.below(4) as u8,
                1_000 + rng.below(20_000),
                rng.below(6_000),
                areas,
            );
            p.comm_cycles = rng.below(500);
            p
        })
        .collect()
}

fn spec_for(seed: u64, profiles: &[AppProfile], jobs: usize) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        jobs,
        mean_interarrival: 4_000,
        mix: (0..profiles.len())
            .map(|app| AppShare {
                app,
                weight: 1 + (app as u32 % 3),
            })
            .collect(),
    }
}

/// The subsequence of `jobs` that shard `shard` of `k` simulates —
/// global ids and arrivals preserved, relative order kept.
fn shard_subset(jobs: &[Job], shard: usize, k: usize) -> Vec<Job> {
    jobs.iter()
        .copied()
        .filter(|job| shard_of(job.app, k) == shard)
        .collect()
}

/// Render the trace of one run to its canonical Chrome JSON bytes.
fn traced_bytes(sim: &Simulation<'_>, jobs: &[Job]) -> (amdrel_runtime::RuntimeReport, String) {
    let buffer = TraceBuffer::new();
    let report = sim.trace(&buffer).run(jobs);
    (report, chrome_trace(&buffer.events()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `shards(1)` routes around the shard runner entirely: report,
    /// JSON and rendered trace are byte-identical to the plain engine,
    /// under every policy and with live faults.
    #[test]
    fn one_shard_is_byte_identical_to_the_oracle(
        seed in any::<u64>(),
        jobs in 1usize..60,
        rate in 0u16..301,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed ^ 0xA5A5, &profiles, jobs).generate(&profiles);
        let faults = FaultSpec::uniform(seed ^ 0x5A5A, rate);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(faults);
            let (oracle, oracle_trace) = traced_bytes(&sim, &stream);
            let (sharded, sharded_trace) = traced_bytes(&sim.shards(1), &stream);
            prop_assert_eq!(&oracle, &sharded, "policy {}", name);
            prop_assert_eq!(report_to_json(&oracle), report_to_json(&sharded));
            prop_assert_eq!(oracle_trace, sharded_trace, "policy {}: trace diverged", name);
        }
    }

    /// A workload whose jobs all target one application leaves every
    /// shard but one silent, so *any* shard count must reproduce the
    /// unsharded run byte-for-byte — trace included.
    #[test]
    fn single_app_workloads_are_shard_count_invariant(
        seed in any::<u64>(),
        jobs in 1usize..60,
        rate in 0u16..301,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let spec = WorkloadSpec {
            seed: seed ^ 0xA5A5,
            jobs,
            mean_interarrival: 4_000,
            mix: vec![AppShare { app: 0, weight: 1 }],
        };
        let stream = spec.generate(&profiles);
        let sim = Simulation::new(&platform)
            .profiles(&profiles)
            .policy(&amdrel_runtime::Fcfs)
            .faults(FaultSpec::uniform(seed ^ 0x5A5A, rate));
        let (oracle, oracle_trace) = traced_bytes(&sim, &stream);
        for k in SHARD_COUNTS {
            let (sharded, sharded_trace) = traced_bytes(&sim.shards(k), &stream);
            prop_assert_eq!(&oracle, &sharded, "k={}", k);
            prop_assert_eq!(report_to_json(&oracle), report_to_json(&sharded));
            prop_assert_eq!(&oracle_trace, &sharded_trace, "k={}: trace diverged", k);
        }
    }

    /// The threaded run is exactly the shard-order fold of `k`
    /// independent single-threaded runs over the shard subsequences:
    /// counters add, makespan maxes, calendar statistics fold
    /// element-wise, and each app's statistics are those of the one
    /// shard that simulated it.
    #[test]
    fn sharded_merge_equals_the_shard_order_fold(
        seed in any::<u64>(),
        jobs in 1usize..80,
        rate in 0u16..301,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed ^ 0xA5A5, &profiles, jobs).generate(&profiles);
        let faults = FaultSpec::uniform(seed ^ 0x5A5A, rate);
        let recovery = RecoveryPolicy { degrade: true, ..RecoveryPolicy::default() };
        for name in ["fcfs", "affinity"] {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(faults)
                .recovery(recovery);
            for k in [2usize, 3, 8] {
                let merged = sim.shards(k).run(&stream);
                let solos: Vec<_> = (0..k)
                    .map(|shard| sim.run(&shard_subset(&stream, shard, k)))
                    .collect();
                let sum = |f: fn(&amdrel_runtime::RuntimeReport) -> u64| -> u64 {
                    solos.iter().map(f).sum()
                };
                prop_assert_eq!(merged.arrived(), sum(|r| r.arrived()), "policy {} k={}", name, k);
                prop_assert_eq!(merged.completed(), sum(|r| r.completed()));
                prop_assert_eq!(merged.rejected(), sum(|r| r.rejected()));
                prop_assert_eq!(merged.fpga_busy_cycles, sum(|r| r.fpga_busy_cycles));
                prop_assert_eq!(merged.cgc_busy_cycles, sum(|r| r.cgc_busy_cycles));
                prop_assert_eq!(merged.reconfig_loads, sum(|r| r.reconfig_loads));
                prop_assert_eq!(merged.reconfig_stall_cycles, sum(|r| r.reconfig_stall_cycles));
                prop_assert_eq!(
                    merged.makespan,
                    solos.iter().map(|r| r.makespan).max().unwrap_or(0)
                );
                prop_assert_eq!(merged.queue.events, sum(|r| r.queue.events));
                prop_assert_eq!(
                    merged.queue.peak_occupancy,
                    solos.iter().map(|r| r.queue.peak_occupancy).max().unwrap_or(0)
                );
                prop_assert_eq!(
                    merged.reliability.injected,
                    solos.iter().map(|r| r.reliability.injected).sum::<u64>(),
                    "policy {} k={}", name, k
                );
                // Each app lives on exactly one shard; its merged
                // statistics are that shard's, bit for bit.
                for (app, stats) in merged.apps.iter().enumerate() {
                    let home = &solos[shard_of(app, k)].apps[app];
                    prop_assert_eq!(stats, home, "policy {} k={} app {}", name, k, app);
                }
            }
        }
    }

    /// Sharded runs replay bit-for-bit — report, JSON and trace — under
    /// every policy, with live faults and a frozen 4-region plan.
    #[test]
    fn faulted_region_sharded_runs_replay_bit_identically(
        seed in any::<u64>(),
        jobs in 1usize..60,
        rate in 0u16..301,
        k in 2usize..9,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed ^ 0xA5A5, &profiles, jobs).generate(&profiles);
        let plan = RegionPlan::new(
            &profiles,
            &FabricGrid::uniform(platform.fpga.usable_area(), 4),
        );
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(FaultSpec::uniform(seed ^ 0x5A5A, rate))
                .regions(&plan)
                .shards(k);
            let (a, trace_a) = traced_bytes(&sim, &stream);
            let (b, trace_b) = traced_bytes(&sim, &stream);
            prop_assert_eq!(&a, &b, "policy {} k={}", name, k);
            prop_assert_eq!(report_to_json(&a), report_to_json(&b));
            prop_assert_eq!(trace_a, trace_b, "policy {} k={}: trace replay diverged", name, k);
        }
    }

    /// The work-conservation fields never depend on the shard count:
    /// arrivals, completions, rejections (unbounded queue), the summed
    /// busy cycles and the latency-source resolution all match the
    /// unsharded oracle at every `k` on a fault-free run.
    #[test]
    fn work_conservation_fields_are_shard_count_invariant(
        seed in any::<u64>(),
        jobs in 1usize..80,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed ^ 0xA5A5, &profiles, jobs).generate(&profiles);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform).profiles(&profiles).policy(policy.as_ref());
            let oracle = sim.run(&stream);
            for k in SHARD_COUNTS {
                let sharded = sim.shards(k).run(&stream);
                prop_assert_eq!(sharded.arrived(), oracle.arrived(), "policy {} k={}", name, k);
                prop_assert_eq!(sharded.completed(), oracle.completed());
                prop_assert_eq!(sharded.rejected(), 0u64);
                prop_assert_eq!(sharded.latency_source, oracle.latency_source);
                prop_assert_eq!(
                    sharded.fpga_busy_cycles + sharded.cgc_busy_cycles,
                    oracle.fpga_busy_cycles + oracle.cgc_busy_cycles,
                    "policy {} k={}: busy cycles not conserved", name, k
                );
            }
        }
    }

    /// Sketch merges are exact and associative: folding per-shard
    /// sketches — in shard order or any other grouping — reproduces the
    /// whole-population sketch, in both representations.
    #[test]
    fn sketch_merges_are_shard_count_invariant(
        seed in any::<u64>(),
        count in 1usize..600,
        k in 1usize..9,
    ) {
        let mut rng = SplitMix64::new(seed);
        let samples: Vec<u64> = (0..count).map(|_| rng.below(1 << 20)).collect();
        for source in [LatencySource::Exact, LatencySource::Sketched] {
            let mut whole = LatencySketch::new(source);
            for &s in &samples {
                whole.record(s);
            }
            let mut parts: Vec<LatencySketch> =
                (0..k).map(|_| LatencySketch::new(source)).collect();
            for (i, &s) in samples.iter().enumerate() {
                parts[shard_of(i, k)].record(s);
            }
            let folded = parts
                .into_iter()
                .fold(LatencySketch::new(source), |acc, part| acc.merge(&part));
            prop_assert_eq!(folded.count(), whole.count(), "source {:?} k={}", source, k);
            prop_assert_eq!(folded.max(), whole.max());
            for q in [1, 25, 50, 75, 95, 99, 100] {
                prop_assert_eq!(
                    folded.percentile(q),
                    whole.percentile(q),
                    "source {:?} k={} q={}", source, k, q
                );
            }
        }
    }
}

/// The acceptance scenarios pinned as plain tests: a faulted mix and a
/// 4-region plan, each run sharded at K ∈ {2, 3, 8} and required to
/// replay bit-identically while folding exactly as documented.
#[test]
fn acceptance_mixes_merge_deterministically() {
    let profiles = tenants(42);
    let platform = Platform::paper(1500, 2);
    let stream = spec_for(42, &profiles, 160).generate(&profiles);
    let plan = RegionPlan::new(
        &profiles,
        &FabricGrid::uniform(platform.fpga.usable_area(), 4),
    );
    let base = Simulation::new(&platform).profiles(&profiles);
    let faulted = base
        .faults(FaultSpec::uniform(7, 30))
        .recovery(RecoveryPolicy {
            degrade: true,
            ..RecoveryPolicy::default()
        });
    let regioned = base.regions(&plan);
    for sim in [base, faulted, regioned] {
        let oracle = sim.run(&stream);
        for k in [2usize, 3, 8] {
            let sharded = sim.shards(k);
            let a = sharded.run(&stream);
            let b = sharded.run(&stream);
            assert_eq!(a, b, "k={k}: sharded replay diverged");
            assert_eq!(report_to_json(&a), report_to_json(&b));
            assert_eq!(a.arrived(), oracle.arrived(), "k={k}");
            let folded: u64 = (0..k)
                .map(|shard| sim.run(&shard_subset(&stream, shard, k)).completed())
                .sum();
            assert_eq!(a.completed(), folded, "k={k}: fold diverged");
        }
    }
}
