//! Property tests for the runtime simulator: bit-determinism of the
//! event order, conservation of jobs, and monotonicity in the
//! reconfiguration latency.

use amdrel_core::rng::SplitMix64;
use amdrel_core::{Platform, ReconfigModel};
use amdrel_runtime::{
    policy_by_name, report_to_json, AppProfile, AppShare, FaultSpec, Fcfs, Job, RecoveryPolicy,
    SimConfig, Simulation, WorkloadSpec,
};
use proptest::prelude::*;
use std::num::{NonZeroU64, NonZeroUsize};

/// Expand a seed into a small heterogeneous tenant set (1–4 apps with
/// varied sizes, priorities and partition footprints).
fn tenants(seed: u64) -> Vec<AppProfile> {
    let mut rng = SplitMix64::new(seed);
    let n = 1 + rng.below(4) as usize;
    (0..n)
        .map(|i| {
            let parts = rng.below(4) as usize; // 0..=3 partitions
            let areas: Vec<u64> = (0..parts).map(|_| 50 + rng.below(400)).collect();
            let mut p = AppProfile::synthetic(
                &format!("app{i}"),
                rng.below(4) as u8,
                1_000 + rng.below(20_000),
                rng.below(6_000),
                areas,
            );
            p.comm_cycles = rng.below(500);
            p
        })
        .collect()
}

fn spec_for(seed: u64, profiles: &[AppProfile], jobs: usize) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        jobs,
        mean_interarrival: 4_000,
        mix: (0..profiles.len())
            .map(|app| AppShare {
                app,
                weight: 1 + (app as u32 % 3),
            })
            .collect(),
    }
}

const POLICIES: [&str; 4] = ["fcfs", "sjf", "priority", "affinity"];

proptest! {
    /// Identical inputs replay bit-for-bit: the report (every counter
    /// and percentile) and its JSON rendering are equal across runs,
    /// under every policy.
    #[test]
    fn simulation_is_bit_deterministic(seed in any::<u64>(), jobs in 1usize..80) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed ^ 0xA5A5, &profiles, jobs).generate(&profiles);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform).profiles(&profiles).policy(policy.as_ref());
            let a = sim.run(&stream);
            let b = sim.run(&stream);
            prop_assert_eq!(&a, &b, "policy {}", name);
            prop_assert_eq!(report_to_json(&a), report_to_json(&b));
        }
    }

    /// The workload generator forks one RNG stream per concern, so the
    /// stream is prefix-stable in the job count and independent of
    /// everything the simulator later does with it.
    #[test]
    fn workload_forks_are_policy_irrelevant_and_prefix_stable(seed in any::<u64>(), jobs in 1usize..60) {
        let profiles = tenants(seed);
        let spec = spec_for(seed, &profiles, jobs);
        let stream = spec.generate(&profiles);
        // Regenerating after arbitrary simulation activity is identical
        // (the simulator consumes no randomness)...
        let platform = Platform::paper(1500, 3);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let _ = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .run(&stream);
        }
        prop_assert_eq!(&stream, &spec.generate(&profiles));
        // ...and growing the job count only appends.
        let longer = spec_for(seed, &profiles, jobs + 40).generate(&profiles);
        prop_assert_eq!(&stream[..], &longer[..jobs]);
    }

    /// The lazy generator is the batch generator, element for element:
    /// full streams agree, and any shorter spec's batch output is a
    /// prefix of the longer stream consumed lazily.
    #[test]
    fn streaming_generation_matches_batch_on_prefixes(seed in any::<u64>(), jobs in 1usize..120) {
        let profiles = tenants(seed);
        let spec = spec_for(seed, &profiles, jobs);
        let batch = spec.generate(&profiles);
        let streamed: Vec<Job> = spec.generate_streaming(&profiles).collect();
        prop_assert_eq!(&batch, &streamed);
        let prefix_len = jobs.div_ceil(2);
        let shorter = spec_for(seed, &profiles, prefix_len).generate(&profiles);
        let prefix: Vec<Job> = spec.generate_streaming(&profiles).take(prefix_len).collect();
        prop_assert_eq!(shorter, prefix);
    }

    /// Conservation: every arrived job is exactly one of
    /// completed/rejected, per app and in total, for every policy and
    /// admission bound.
    #[test]
    fn jobs_are_conserved(seed in any::<u64>(), jobs in 1usize..80, bound in 0usize..6) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let r = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .queue_bound(NonZeroUsize::new(bound))
                .run(&stream);
            prop_assert_eq!(r.arrived(), jobs as u64);
            prop_assert_eq!(r.arrived(), r.completed() + r.rejected());
            for a in &r.apps {
                prop_assert_eq!(a.arrived, a.completed + a.rejected, "app {}", &a.name);
            }
            if bound == 0 {
                prop_assert_eq!(r.rejected(), 0, "unbounded queue never rejects");
            }
        }
    }

    /// The zero-rate fault spec is inert: attaching it — with any
    /// recovery policy — reproduces the default run's behaviour exactly
    /// (everything but the recorded recovery metadata), under every
    /// policy.
    #[test]
    fn inert_fault_spec_changes_nothing(seed in any::<u64>(), jobs in 1usize..60, retries in 0u32..8, degrade in any::<bool>()) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let recovery = RecoveryPolicy { max_retries: retries, degrade, ..RecoveryPolicy::default() };
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform).profiles(&profiles).policy(policy.as_ref());
            let plain = sim.run(&stream);
            let mut inert = sim.faults(FaultSpec::none()).recovery(recovery).run(&stream);
            prop_assert_eq!(inert.recovery, recovery);
            inert.recovery = plain.recovery;
            prop_assert_eq!(&plain, &inert, "policy {}", name);
        }
    }

    /// Fault streams are prefix-stable across job-count forks and
    /// policy-independent: a job's fault draws depend only on
    /// `(fault seed, channel, job id, attempt)`, never on how many
    /// other jobs exist or what the scheduler did.
    #[test]
    fn fault_streams_are_prefix_stable(seed in any::<u64>(), jobs in 1u64..200, rate in 1u16..1001) {
        let spec = FaultSpec::uniform(seed, rate);
        let draws = |n: u64| -> Vec<(bool, Option<u64>, Option<u64>)> {
            (0..n)
                .map(|j| (spec.load_fails(j, 0), spec.fabric_kill(j, 1), spec.slot_outage(j, 2)))
                .collect()
        };
        let short = draws(jobs);
        // Simulate in between: decisions are pure, nothing perturbs them.
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, 24).generate(&profiles);
        let _ = Simulation::new(&platform).profiles(&profiles).faults(spec).run(&stream);
        let longer = draws(jobs + 100);
        prop_assert_eq!(&short[..], &longer[..jobs as usize], "growing the job count moved an existing draw");
        prop_assert_eq!(&short, &draws(jobs), "replay changed a draw");
    }

    /// Conservation under faults: every arrived job is exactly one of
    /// completed / rejected / aborted / reaped-at-deadline, in
    /// aggregate, for every policy and recovery mode — and the
    /// goodput ≤ throughput invariant holds.
    #[test]
    fn jobs_are_conserved_under_faults(
        seed in any::<u64>(),
        jobs in 1usize..60,
        rate in 0u16..401,
        degrade in any::<bool>(),
        deadline in 0u64..1u64 << 24, // 0 = no deadline
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let mut faults = FaultSpec::uniform(seed ^ 0x5A5A, rate);
        faults.deadline = NonZeroU64::new(deadline);
        let recovery = RecoveryPolicy { degrade, ..RecoveryPolicy::default() };
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let r = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(faults)
                .recovery(recovery)
                .run(&stream);
            prop_assert_eq!(r.arrived(), jobs as u64);
            prop_assert_eq!(
                r.arrived(),
                r.completed() + r.rejected() + r.reliability.aborted + r.reliability.deadline_misses,
                "policy {}", name
            );
            prop_assert_eq!(
                r.completed(),
                r.reliability.clean_completed + r.reliability.faulted_completed
            );
            if degrade {
                prop_assert_eq!(r.reliability.aborted, 0, "degradation never drops a job");
            }
            prop_assert!(r.reliability.degraded <= r.completed());
            prop_assert!(r.goodput_jobs_per_mcycle() <= r.throughput_jobs_per_mcycle() + 1e-9);
            let avail = r.availability();
            prop_assert!((0.0..=1.0).contains(&avail), "availability {} out of range", avail);
        }
    }

    /// Tracing is a pure observer: attaching a sink changes neither the
    /// report nor its JSON rendering — even under live faults — and the
    /// recorded trace itself replays bit-for-bit.
    #[test]
    fn tracing_is_a_pure_observer_and_bit_deterministic(
        seed in any::<u64>(),
        jobs in 1usize..60,
        rate in 0u16..301,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let faults = FaultSpec::uniform(seed ^ 0x5A5A, rate);
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let sim = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(faults);
            let plain = sim.run(&stream);
            let buf_a = amdrel_trace::TraceBuffer::new();
            let traced = sim.trace(&buf_a).run(&stream);
            prop_assert_eq!(&plain, &traced, "policy {}: the sink perturbed the outcome", name);
            prop_assert_eq!(report_to_json(&plain), report_to_json(&traced));
            let buf_b = amdrel_trace::TraceBuffer::new();
            let _ = sim.trace(&buf_b).run(&stream);
            prop_assert_eq!(buf_a.events(), buf_b.events(), "policy {}: trace replay diverged", name);
            // Every admitted job opens exactly one lifecycle marker and
            // closes it exactly once (complete / abort / deadline reap).
            let events = buf_a.events();
            let begins = events.iter().filter(|e| e.name == "job" && e.dur == 0
                && matches!(e.kind, amdrel_trace::EventKind::JobBegin)).count() as u64;
            let ends = events.iter()
                .filter(|e| matches!(e.kind, amdrel_trace::EventKind::JobEnd)).count() as u64;
            prop_assert_eq!(begins, plain.arrived() - plain.rejected());
            prop_assert_eq!(begins, ends, "policy {}: unbalanced job lifecycle markers", name);
        }
    }

    /// Traces are prefix-stable in the job count: growing the workload
    /// appends arrivals but never rewrites history, so every event that
    /// precedes the first extra arrival is identical — time, seq, track
    /// and payload — between the short and the long run.
    #[test]
    fn traces_are_prefix_stable_in_the_job_count(
        seed in any::<u64>(),
        jobs in 1usize..40,
        extra in 1usize..20,
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let short_stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let long_stream = spec_for(seed, &profiles, jobs + extra).generate(&profiles);
        let cutoff = long_stream[jobs].arrival;
        let sim = Simulation::new(&platform).profiles(&profiles).policy(&Fcfs);
        let short_buf = amdrel_trace::TraceBuffer::new();
        let _ = sim.trace(&short_buf).run(&short_stream);
        let long_buf = amdrel_trace::TraceBuffer::new();
        let _ = sim.trace(&long_buf).run(&long_stream);
        let prefix = |buf: &amdrel_trace::TraceBuffer| -> Vec<amdrel_trace::TraceEvent> {
            buf.events().into_iter().filter(|e| e.time < cutoff).collect()
        };
        prop_assert_eq!(
            prefix(&short_buf),
            prefix(&long_buf),
            "events before the first extra arrival (cycle {}) must match",
            cutoff
        );
    }

    /// A rate-1000 per-mille channel is a certainty, not a coin: every
    /// decision fires, on every channel, for every `(job, attempt)`
    /// pair — and the drawn waste fraction stays inside the permille
    /// range.
    #[test]
    fn saturated_fault_channels_always_fire(
        seed in any::<u64>(),
        job in any::<u64>(),
        attempt in 0u32..64,
    ) {
        let spec = FaultSpec::uniform(seed, 1000);
        prop_assert!(spec.load_fails(job, attempt), "rate-1000 load draw did not fire");
        let kill = spec.fabric_kill(job, attempt);
        prop_assert!(kill.is_some(), "rate-1000 fabric draw did not fire");
        prop_assert!(kill.unwrap() < 1000, "waste fraction {:?} out of permille range", kill);
        let outage = spec.slot_outage(job, attempt);
        prop_assert!(outage.is_some(), "rate-1000 outage draw did not fire");
        prop_assert!(outage.unwrap() < 1000, "waste fraction {:?} out of permille range", outage);
    }

    /// A repair window near `u64::MAX` pins slots down for the rest of
    /// the run: the clock, the downtime counter and every schedule
    /// saturate instead of overflowing, conservation still holds, and
    /// two or more outages drive the recorded downtime to exactly the
    /// saturation ceiling.
    #[test]
    fn huge_repair_windows_saturate_instead_of_overflowing(
        seed in any::<u64>(),
        jobs in 1usize..40,
        slack in 0u64..1u64 << 16,
        degrade in any::<bool>(),
    ) {
        let profiles = tenants(seed);
        let platform = Platform::paper(1500, 2);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let mut faults = FaultSpec::none();
        faults.seed = seed ^ 0x5A5A;
        faults.outage_permille = 1000;
        faults.repair_cycles = u64::MAX - slack;
        let recovery = RecoveryPolicy { degrade, ..RecoveryPolicy::default() };
        for name in POLICIES {
            let policy = policy_by_name(name).unwrap();
            let r = Simulation::new(&platform)
                .profiles(&profiles)
                .policy(policy.as_ref())
                .faults(faults)
                .recovery(recovery)
                .run(&stream);
            prop_assert_eq!(r.arrived(), jobs as u64, "policy {}", name);
            prop_assert_eq!(
                r.arrived(),
                r.completed() + r.rejected() + r.reliability.aborted
                    + r.reliability.deadline_misses
            );
            let outages = r.reliability.slot_outages;
            let downtime = r.reliability.slot_downtime_cycles;
            match outages {
                0 => prop_assert_eq!(downtime, 0),
                1 => prop_assert_eq!(downtime, faults.repair_cycles),
                _ => prop_assert_eq!(
                    downtime,
                    u64::MAX,
                    "policy {}: {} huge repairs must saturate the counter", name, outages
                ),
            }
            if degrade {
                prop_assert_eq!(r.reliability.aborted, 0, "degradation never drops a job");
            }
        }
    }

    /// Monotonicity: cutting the reconfiguration latency to zero never
    /// increases the makespan. Asserted under FCFS with an unbounded
    /// queue, where the dispatch order is identical in both runs, so
    /// every phase start shifts earlier or stays — pointwise.
    #[test]
    fn free_reconfiguration_never_hurts(seed in any::<u64>(), jobs in 1usize..80) {
        let profiles = tenants(seed);
        let stream = spec_for(seed, &profiles, jobs).generate(&profiles);
        let charged = Platform::paper(1500, 2);
        let free = Platform::paper(1500, 2).with_reconfig(ReconfigModel::free());
        for &config in &[
            SimConfig::default(),
            SimConfig { config_cache: false, ..SimConfig::default() },
            SimConfig { prefetch: true, ..SimConfig::default() },
        ] {
            let with_cost = Simulation::new(&charged).profiles(&profiles).policy(&Fcfs).config(config).run(&stream);
            let no_cost = Simulation::new(&free).profiles(&profiles).policy(&Fcfs).config(config).run(&stream);
            prop_assert!(
                no_cost.makespan <= with_cost.makespan,
                "free reconfig increased makespan: {} > {} (config {:?})",
                no_cost.makespan, with_cost.makespan, config
            );
            prop_assert_eq!(no_cost.reconfig_stall_cycles, 0);
            prop_assert_eq!(no_cost.completed(), with_cost.completed());
        }
    }
}
