//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API the workspace tests use:
//! the [`proptest!`] macro, `prop_assert*!`/[`prop_assume!`],
//! [`prop_oneof!`], [`Just`], [`any`], integer/float ranges, tuples,
//! `prop_map`, `prop_recursive`, [`BoxedStrategy`], `prop::array::uniform4`,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic** — case `i` of a test always sees the same inputs
//!   (seeded from the test's module path and the case index), so CI
//!   failures reproduce locally.
//! * **No shrinking** — a failing case panics with the offending inputs
//!   rendered via `Debug` instead of a minimised counter-example. The
//!   panic message carries the case's RNG seed, so the exact inputs can
//!   be rebuilt with [`TestRng::from_seed`] in a scratch test without
//!   replaying the whole case sweep.

use std::rc::Rc;

/// Splitmix64-based generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a string, used to give each test its own seed stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Error type carried by `prop_assert*!` failures inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of values of one type.
///
/// Mirrors proptest's `Strategy` trait: combinators consume `self` and
/// generation is driven by a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper; depth
    /// is capped at `depth`. The size/branch hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Mix the base back in so generated structures vary in depth
            // instead of always bottoming out at the cap.
            strat = Union::weighted(vec![(1, base.clone()), (3, deeper)]).boxed();
        }
        strat
    }

    /// Erase the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice among strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice among `arms`.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % u64::from(self.total_weight)) as u32;
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total_weight")
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*}
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*}
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Array strategies (`prop::array::*`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; 4]` drawing each element from `S`.
    #[derive(Debug, Clone)]
    pub struct UniformArray4<S>(S);

    impl<S: Strategy> Strategy for UniformArray4<S> {
        type Value = [S::Value; 4];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
            ]
        }
    }

    /// Four independent draws from `strategy`.
    pub fn uniform4<S: Strategy>(strategy: S) -> UniformArray4<S> {
        UniformArray4(strategy)
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform (or weighted, in the real crate) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Skip the current case (counting it as passed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests over generated inputs.
///
/// Supports the form used across this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_seed =
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_seed =
                        test_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = $crate::TestRng::from_seed(case_seed);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let inputs = format!(concat!($("  ", stringify!($arg), " = {:#?}\n"),+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed \
                             (rng seed {:#018x} — replay via TestRng::from_seed): {}\ninputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            case_seed,
                            e,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}
