//! The stand-in harness must actually generate cases and surface failures.

use proptest::prelude::*;

proptest! {
    #[test]
    fn ranges_honour_bounds(x in 10i64..20, f in 0.25f64..0.75) {
        prop_assert!((10..20).contains(&x));
        prop_assert!((0.25..0.75).contains(&f));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(7))]
    #[test]
    fn config_cases_are_respected(_x in any::<u64>()) {
        // Counted via a static: exactly 7 cases must run.
        use std::sync::atomic::{AtomicU32, Ordering};
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let n = RUNS.fetch_add(1, Ordering::SeqCst) + 1;
        prop_assert!(n <= 7);
    }
}

#[test]
fn failing_property_panics_with_inputs() {
    let result = std::panic::catch_unwind(|| {
        // No #[test] attribute here: the fn is generated plain and called
        // directly so the failure can be observed via catch_unwind.
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    });
    let err = result.expect_err("a failing property must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic carries a message");
    assert!(
        msg.contains("always_fails"),
        "message names the test: {msg}"
    );
    assert!(msg.contains("inputs"), "message shows the inputs: {msg}");
}

#[test]
fn oneof_and_recursive_terminate() {
    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }
    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(n) => u32::from(*n > 100), // leaves stay in range, depth 0
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }
    let strat = (0i64..100)
        .prop_map(Tree::Leaf)
        .prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
    let mut rng = proptest::TestRng::from_seed(42);
    let mut saw_node = false;
    for _ in 0..200 {
        let t = strat.sample(&mut rng);
        assert!(depth(&t) <= 4, "depth capped");
        saw_node |= matches!(t, Tree::Node(..));
    }
    assert!(saw_node, "recursion must actually recurse");
}
