//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Timing is a plain mean over a fixed-budget measurement loop — no
//! statistics, warm-up analysis, plots, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Identifier of one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the closure of `bench_function` et al.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `routine`, keeping the measurement budget small: a short
    /// calibration run sizes the batch so measurement stays near
    /// `MEASURE_BUDGET` wall-clock time in total.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const CALIBRATION_BUDGET: Duration = Duration::from_millis(20);
        const MEASURE_BUDGET: Duration = Duration::from_millis(200);

        // Calibration: find how many iterations fit in the budget.
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < CALIBRATION_BUDGET {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = start.elapsed() / u32::try_from(calib_iters.max(1)).unwrap_or(u32::MAX);
        let target = MEASURE_BUDGET
            .as_nanos()
            .checked_div(per_iter.as_nanos().max(1))
            .unwrap_or(1);
        let iters = target.clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, id: &str) {
        let mean = self.total.as_nanos() / u128::from(self.iters.max(1));
        println!(
            "bench: {id:<50} {:>12.3} µs/iter ({} iters)",
            mean as f64 / 1_000.0,
            self.iters
        );
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        b.report(&id.id);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its own loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}
