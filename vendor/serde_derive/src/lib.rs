//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace only uses serde derives as annotations — nothing calls a
//! serializer at runtime — and the companion `serde` stand-in blanket-
//! implements both traits, so these derives can expand to nothing.

use proc_macro::TokenStream;

/// Derive stand-in for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive stand-in for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
