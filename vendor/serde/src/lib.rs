//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! annotations and occasional `T: Serialize` bounds; no code performs
//! runtime serialisation. The traits here are therefore markers with
//! blanket implementations, and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that derive annotations and
/// `T: Serialize` bounds in the workspace compile unchanged.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Blanket-implemented for every type so that derive annotations and
/// `T: Deserialize<'de>` bounds in the workspace compile unchanged.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module (trait re-exports only).
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module (trait re-exports only).
pub mod ser {
    pub use super::Serialize;
}
