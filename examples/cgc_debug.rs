//! Debug aid: per-kernel coarse-grain schedule lengths on two vs three
//! 2×2 CGCs, to see which blocks are resource- vs dependency-limited.

use amdrel_apps::{jpeg, ofdm};
use amdrel_coarsegrain::{map_dfg, CgcDatapath, SchedulerConfig};
use amdrel_profiler::{AnalysisReport, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (name, w) in [
        ("OFDM", ofdm::workload(2004)),
        ("JPEG", jpeg::workload(64, 2004)),
    ] {
        let (p, e) = w.compile_and_profile()?;
        let a = AnalysisReport::analyze(&p.cdfg, &e.block_counts, &WeightTable::paper());
        println!("== {name} ==");
        println!(
            "{:>4} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6}",
            "bb", "freq", "weight", "len2", "len3", "ops", "mem"
        );
        let cfg = SchedulerConfig::default();
        for prof in a.top_kernels(8) {
            let dfg = &p.cdfg.block(prof.block).dfg;
            let m2 = map_dfg(dfg, &CgcDatapath::two_2x2(), &cfg)?;
            let m3 = map_dfg(dfg, &CgcDatapath::three_2x2(), &cfg)?;
            println!(
                "{:>4} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6}",
                prof.block.index(),
                prof.exec_freq,
                prof.bb_weight,
                m2.cycles_per_exec(),
                m3.cycles_per_exec(),
                m2.report.cgc_ops,
                m2.report.mem_ops,
            );
        }
    }
    Ok(())
}
