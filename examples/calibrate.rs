//! Internal calibration sweep for the FPGA characterisation defaults.
//!
//! Prints, for a grid of area-library scale factors and reconfiguration
//! costs, the shape metrics the paper's Tables 2/3 exhibit:
//! initial(1500)/initial(5000) ratio, CGC-cycle ratio two/three CGCs, and
//! reduction percentages. Used to choose the crate defaults; kept as an
//! example because it doubles as a sensitivity study.

use amdrel_apps::{jpeg, ofdm};
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{run_grid, Platform};
use amdrel_finegrain::AreaLibrary;
use amdrel_profiler::{AnalysisReport, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ofdm_w = ofdm::workload(2004);
    let (ofdm_p, ofdm_e) = ofdm_w.compile_and_profile()?;
    let ofdm_a = AnalysisReport::analyze(&ofdm_p.cdfg, &ofdm_e.block_counts, &WeightTable::paper());

    let jpeg_w = jpeg::workload(64, 2004); // small image: same structure, fast
    let (jpeg_p, jpeg_e) = jpeg_w.compile_and_profile()?;
    let jpeg_a = AnalysisReport::analyze(&jpeg_p.cdfg, &jpeg_e.block_counts, &WeightTable::paper());

    println!("paper targets: OFDM init ratio 2.12, CGC ratio 1.28, red 78-82% (A=1500) / 54-63% (A=5000)");
    println!("               JPEG init ratio 1.49, CGC ratio 1.02, red 43% / 16-18%");
    println!();
    println!(
        "{:>5} {:>8} | {:>10} {:>8} {:>7} {:>7} | {:>10} {:>8} {:>7} {:>7}",
        "scale",
        "reconfig",
        "ofdm_init",
        "ofdm_cgc",
        "red1500",
        "red5000",
        "jpeg_init",
        "jpeg_cgc",
        "red1500",
        "red5000"
    );

    for scale in [1.0f64, 2.0, 4.0, 6.0, 8.0, 12.0] {
        for reconfig in [10u64, 20, 30, 60] {
            let mut base = Platform::paper(1500, 2);
            base.fpga.area = AreaLibrary {
                alu: (30.0 * scale) as u64,
                mul: (120.0 * scale) as u64,
                div: (240.0 * scale) as u64,
                mem: (20.0 * scale) as u64,
            };
            base.fpga.reconfig_cycles = reconfig;

            let mut stats = Vec::new();
            for (cdfg, analysis) in [(&ofdm_p.cdfg, &ofdm_a), (&jpeg_p.cdfg, &jpeg_a)] {
                let grid = run_grid(
                    "x",
                    cdfg,
                    analysis,
                    &base,
                    &[1500, 5000],
                    &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
                    1, // impossible constraint: move all kernels, observe asymptote
                )?;
                let init_ratio = grid.cells[0].result.initial_cycles as f64
                    / grid.cells[2].result.initial_cycles as f64;
                let cgc2 = grid.cells[0].result.breakdown.t_coarse_cgc as f64;
                let cgc3 = grid.cells[1].result.breakdown.t_coarse_cgc as f64;
                let red1500 = grid.cells[1].result.reduction_percent();
                let red5000 = grid.cells[3].result.reduction_percent();
                stats.push((init_ratio, cgc2 / cgc3.max(1.0), red1500, red5000));
            }
            println!(
                "{:>5.1} {:>8} | {:>10.2} {:>8.2} {:>7.1} {:>7.1} | {:>10.2} {:>8.2} {:>7.1} {:>7.1}",
                scale, reconfig,
                stats[0].0, stats[0].1, stats[0].2, stats[0].3,
                stats[1].0, stats[1].1, stats[1].2, stats[1].3,
            );
        }
    }
    Ok(())
}
