//! Quickstart: run the whole partitioning methodology on a small FIR
//! filter in one call.
//!
//! Run with: `cargo run --release --example quickstart`

use amdrel::core::{run_flow, Platform};

const FIR: &str = r#"
    /* 8-tap FIR filter over 256 samples (fixed point, >>6 scaling). */
    int samples[264];
    int taps[8];
    int out[256];
    int main() {
        for (int i = 0; i < 256; i++) {
            int acc = 0;
            for (int t = 0; t < 8; t++) {
                acc += samples[i + t] * taps[t];
            }
            out[i] = acc >> 6;
        }
        return out[0] + out[255];
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the platform (Figure 1 of the paper): A_FPGA = 1500
    //    area units and two 2x2 CGCs, T_FPGA = 3 x T_CGC.
    let platform = Platform::paper(1500, 2);

    // 2. Pick the timing constraint the application must meet.
    let constraint = 35_000;

    // 3. Run the Figure 2 flow: compile -> profile -> analyse -> partition.
    let samples: Vec<i64> = (0..264).map(|i| ((i * 37) % 255) - 128).collect();
    let taps: Vec<i64> = vec![2, -3, 7, 19, 19, 7, -3, 2];
    let outcome = run_flow(
        FIR,
        &[("samples", &samples), ("taps", &taps)],
        &platform,
        constraint,
    )?;

    let r = &outcome.result;
    println!("FIR filter on {}:", platform.datapath.describe());
    println!("  all-FPGA execution:   {:>8} cycles", r.initial_cycles);
    println!("  timing constraint:    {:>8} cycles", r.constraint);
    for m in &r.moves {
        println!(
            "  moved {:<22} -> t_total {:>8} cycles",
            format!("{} ({})", m.kernel, m.label),
            m.breakdown.t_total()
        );
    }
    println!(
        "  final: {:>8} cycles ({:.1}% reduction) — constraint {}",
        r.final_cycles(),
        r.reduction_percent(),
        if r.met { "MET" } else { "NOT met" },
    );
    println!(
        "  breakdown: t_FPGA {} + t_coarse {} (= {} CGC cycles) + t_comm {}",
        r.breakdown.t_fpga, r.breakdown.t_coarse, r.breakdown.t_coarse_cgc, r.breakdown.t_comm,
    );
    Ok(())
}
