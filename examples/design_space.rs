//! Design-space exploration: sweep FPGA area × CGC count for the OFDM
//! transmitter and print the final-cycles landscape.
//!
//! Extends the paper's four-configuration grid (Tables 2/3) into a full
//! sweep — the kind of study the methodology's "parameterized with
//! respect to the reconfigurable hardware" claim enables.
//!
//! Run with: `cargo run --release --example design_space`

use amdrel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ofdm::workload(2004);
    let (program, execution) = workload.compile_and_profile()?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );

    // Note: below ~1030 area units the 32-bit multiplier (720 units) no
    // longer fits in the routable 70% and the fine-grain mapper correctly
    // refuses the device, so the sweep starts at 1200.
    let areas = [1200u64, 1500, 2500, 5000, 10000, 20000];
    let cgc_counts = [1usize, 2, 3, 4, 6];
    let constraint = paper::OFDM_CONSTRAINT;

    println!(
        "OFDM transmitter: final cycles (and whether the {constraint}-cycle constraint is met)"
    );
    print!("{:>8} |", "A_FPGA");
    for &k in &cgc_counts {
        print!(" {:>12}", format!("{k}x 2x2 CGC"));
    }
    println!(" | {:>12}", "all-FPGA");
    println!("{}", "-".repeat(10 + 13 * cgc_counts.len() + 16));

    for &area in &areas {
        print!("{area:>8} |");
        let mut initial = 0;
        for &k in &cgc_counts {
            let platform = Platform::paper(area, k);
            let result =
                PartitioningEngine::new(&program.cdfg, &analysis, &platform).run(constraint)?;
            initial = result.initial_cycles;
            let marker = if result.met_without_partitioning {
                "=" // all-FPGA already meets the constraint
            } else if result.met {
                ""
            } else {
                "!"
            };
            print!(" {:>11}{marker}", result.final_cycles());
        }
        println!(" | {initial:>12}");
    }
    println!();
    println!("legend: '=' constraint met without partitioning (flow exits at step 2),");
    println!("        '!' constraint NOT met even with every kernel on the CGC datapath");
    Ok(())
}
