//! Multi-objective design-space exploration of the OFDM transmitter:
//! run all three search strategies over the standard case-study space and
//! print their frontiers and effort side by side.
//!
//! Run with: `cargo run --release --example explore_ofdm`

use amdrel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ofdm::workload(2004);
    let (program, execution) = workload.compile_and_profile()?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let base = Platform::paper(1500, 2);
    let space = ofdm::design_space();

    let strategies: [&dyn SearchStrategy; 3] =
        [&Exhaustive, &RandomSampling, &SimulatedAnnealing::default()];
    // One shared mapping cache: later strategies inherit the fabric
    // mappings the earlier ones computed.
    let cache = MappingCache::new();
    for strategy in strategies {
        let evaluator = Evaluator::new(
            &workload.name,
            &program.cdfg,
            &analysis,
            &base,
            EnergyModel::default(),
            &cache,
        );
        let report = explore(
            &evaluator,
            &space,
            strategy,
            &ExploreConfig {
                seed: 42,
                eval_budget: 64,
                jobs: 0,
            },
        )?;
        println!("{}", report.format_table());
    }
    Ok(())
}
