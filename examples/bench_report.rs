//! Machine-readable perf baseline: run the engine/sweep micro-benchmarks
//! and write `BENCH_engine.json` with the mean ns per operation, one
//! seeded exploration per search strategy into `BENCH_explore.json` with
//! its effort counters, the static-vs-contention co-exploration
//! frontiers into `BENCH_explore_contention.json` (including the
//! platform points only the contention-aware search surfaces), and one
//! seeded 3-app runtime simulation per scheduling policy into
//! `BENCH_runtime.json` (simulated throughput, latency percentiles,
//! reconfiguration-stall share, wall-clock simulation speed, one
//! fault-injected reliability row for the recovery invariants, and one
//! floorplan row comparing region-granular partial reconfiguration
//! against streamed full-fabric loads), so the
//! perf, search-efficiency and servable-workload trajectories can all
//! be tracked PR over PR (and checked in CI without the full bench
//! harness). Each file's schema and regression signatures are
//! documented in `docs/BENCHMARKS.md`.
//!
//! Run with: `cargo run --release --example bench_report`

use amdrel::prelude::*;
use amdrel_bench::{synthetic_app, synthetic_tenants};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Mean wall-clock ns of `routine` over a short fixed budget (one warm-up
/// call, then as many timed iterations as fit in ~200 ms).
fn measure<O>(mut routine: impl FnMut() -> O) -> (f64, u64) {
    const BUDGET: Duration = Duration::from_millis(200);
    std::hint::black_box(routine());
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < BUDGET || iters == 0 {
        std::hint::black_box(routine());
        iters += 1;
    }
    (start.elapsed().as_nanos() as f64 / iters as f64, iters)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut report: Vec<(String, f64, u64)> = Vec::new();

    // --- Engine move loop on the OFDM case study (warm mapping cache).
    let workload = ofdm::workload(2004);
    let program = compile(&workload.source, "main")?;
    let execution = Interpreter::new(&program.ir).run(&workload.input_refs())?;
    let ofdm_analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let platform = Platform::paper(1500, 2);
    let cache = MappingCache::new();
    let engine = PartitioningEngine::new(&program.cdfg, &ofdm_analysis, &platform)
        .with_mapping_cache(&cache);
    engine.run(paper::OFDM_CONSTRAINT)?; // warm the cache
    let (ns, iters) = measure(|| engine.run(paper::OFDM_CONSTRAINT).expect("engine runs"));
    report.push(("engine/run_ofdm_a1500_c2_warm".into(), ns, iters));

    // --- Engine move loop at scale (512 synthetic kernels, all moved).
    let (cdfg, freqs) = synthetic_app(512);
    let synth_analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
    let cache = MappingCache::new();
    let engine =
        PartitioningEngine::new(&cdfg, &synth_analysis, &platform).with_mapping_cache(&cache);
    let moves = engine.run(1)?.moves.len().max(1);
    let (ns, iters) = measure(|| engine.run(1).expect("engine runs"));
    report.push(("engine/move_loop_512_blocks_warm".into(), ns, iters));
    report.push((
        "engine/per_move_512_blocks_warm".into(),
        ns / moves as f64,
        iters,
    ));

    // --- Grid sweeps over the OFDM design space.
    let areas = [1200u64, 1500, 5000, 20_000];
    let datapaths = [CgcDatapath::two_2x2(), CgcDatapath::three_2x2()];
    let spec = GridSpec {
        app: &workload.name,
        cdfg: &program.cdfg,
        analysis: &ofdm_analysis,
        base: &platform,
        areas: &areas,
        datapaths: &datapaths,
        constraint: paper::OFDM_CONSTRAINT,
    };
    let (ns, iters) = measure(|| run_grid_cached(&spec, &MappingCache::new()).expect("grid runs"));
    report.push(("sweep/run_grid_cached_cold".into(), ns, iters));
    let (ns, iters) =
        measure(|| run_grid_parallel_cached(&spec, &MappingCache::new()).expect("grid runs"));
    report.push(("sweep/run_grid_parallel_cold".into(), ns, iters));
    let warm = MappingCache::new();
    run_grid_cached(&spec, &warm)?;
    let (ns, iters) = measure(|| run_grid_cached(&spec, &warm).expect("grid runs"));
    report.push(("sweep/run_grid_warm_cache".into(), ns, iters));

    // --- Exploration strategies over the OFDM design space: one seeded
    //     run per strategy, recording effort counters and wall time for
    //     BENCH_explore.json (the search-efficiency baseline asserted by
    //     the apps-crate acceptance test).
    let space = ofdm::design_space();
    let config = ExploreConfig {
        seed: 42,
        eval_budget: 64,
        jobs: 0,
    };
    let strategies: [&dyn SearchStrategy; 3] =
        [&Exhaustive, &RandomSampling, &SimulatedAnnealing::default()];
    let mut explore_rows = Vec::new();
    for strategy in strategies {
        let cache = MappingCache::new();
        let evaluator = Evaluator::new(
            &workload.name,
            &program.cdfg,
            &ofdm_analysis,
            &platform,
            EnergyModel::default(),
            &cache,
        );
        let start = Instant::now();
        let result = explore(&evaluator, &space, strategy, &config)?;
        let wall_ns = start.elapsed().as_nanos() as f64;
        report.push((format!("explore/{}", result.strategy), wall_ns, 1));
        explore_rows.push(result);
    }

    // --- Contention-aware co-exploration on OFDM: the static exhaustive
    //     frontier vs the 4-objective (… + p95) frontier scored by
    //     simulating the seeded standard mix on every candidate
    //     platform, for BENCH_explore_contention.json (the acceptance
    //     baseline asserted by crates/apps/tests/explore_contention.rs).
    let contention = amdrel::apps::runtime::contention_evaluator("ofdm", &platform)?;
    let contention_objectives = ObjectiveSet::parse("cycles,area,energy,p95")?;
    let shared_cache = MappingCache::new();
    let static_eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &ofdm_analysis,
        &platform,
        EnergyModel::default(),
        &shared_cache,
    );
    let static_frontier = explore(&static_eval, &space, &Exhaustive, &config)?;
    let contention_eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &ofdm_analysis,
        &platform,
        EnergyModel::default(),
        &shared_cache,
    )
    .with_objectives(contention_objectives)
    .with_runtime(&contention);
    let start = Instant::now();
    let contention_frontier = explore(&contention_eval, &space, &Exhaustive, &config)?;
    report.push((
        "explore/contention_exhaustive".into(),
        start.elapsed().as_nanos() as f64,
        1,
    ));

    // --- Runtime simulator on the seeded 3-app standard mix: one
    //     simulation per scheduling policy for BENCH_runtime.json, plus
    //     a wall-clock timing of the FCFS run for the perf report.
    let sim_platform = Platform::paper(1500, 2);
    let profiles = amdrel::apps::runtime::standard_mix(&sim_platform)?;
    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    let sim_jobs = spec.generate(&profiles);
    let sim = Simulation::new(&sim_platform).profiles(&profiles);
    let mut runtime_rows = Vec::new();
    for name in ["fcfs", "sjf", "priority", "affinity"] {
        let policy = policy_by_name(name).expect("built-in policy");
        let run = sim.policy(policy.as_ref());
        let (wall_ns, iters) = measure(|| run.run(&sim_jobs));
        let result = run.run(&sim_jobs);
        let sim_jobs_per_sec = result.completed() as f64 * 1e9 / wall_ns;
        if name == "fcfs" {
            report.push(("runtime/fcfs_400_jobs".into(), wall_ns, iters));
        }
        runtime_rows.push((result, sim_jobs_per_sec));
    }

    // --- Planet-scale runtime row: one million jobs over 32 synthetic
    //     tenants, streamed through the calendar-queue engine with
    //     sketched percentiles (the stream is never materialised and
    //     latency memory stays O(1) in the job count). Timed once — at
    //     this size a single run is its own statistics.
    let tenants = synthetic_tenants(32);
    let scaling_spec = WorkloadSpec::uniform(42, 1_000_000, &tenants, 90);
    let scaling_sim = Simulation::new(&sim_platform)
        .profiles(&tenants)
        .policy(&Fcfs)
        .sketch_mode(SketchMode::Sketched);
    let start = Instant::now();
    let scaling_report = scaling_sim.run_mix(&scaling_spec);
    let scaling_wall_ns = start.elapsed().as_nanos() as f64;
    let scaling_jobs_per_sec = scaling_report.completed() as f64 * 1e9 / scaling_wall_ns;
    report.push(("runtime/fcfs_1m_jobs_32_tenants".into(), scaling_wall_ns, 1));

    // --- Sharded scaling row: the same million-job population split
    //     across 8 independent platform replicas (`Simulation::shards`)
    //     and folded back with the deterministic shard-order merge. The
    //     threaded wall-clock rate depends on how many cores this box
    //     has, so the committed row also records the
    //     scheduler-independent aggregate rate — each shard's
    //     subsequence timed serially through the plain engine, rates
    //     summed — which is what CI gates against the unsharded row.
    let shard_count: usize = 8;
    let scaling_jobs = scaling_spec.generate(&tenants);
    let start = Instant::now();
    let sharded_report = scaling_sim.shards(shard_count).run(&scaling_jobs);
    let sharded_wall_ns = start.elapsed().as_nanos() as f64;
    let sharded_jobs_per_sec = sharded_report.completed() as f64 * 1e9 / sharded_wall_ns;
    let mut shard_agg_jobs_per_sec = 0.0;
    for shard in 0..shard_count {
        let subset: Vec<_> = scaling_jobs
            .iter()
            .copied()
            .filter(|job| shard_of(job.app, shard_count) == shard)
            .collect();
        if subset.is_empty() {
            continue;
        }
        let start = Instant::now();
        let part = scaling_sim.run(&subset);
        shard_agg_jobs_per_sec += part.completed() as f64 * 1e9 / start.elapsed().as_nanos() as f64;
    }
    report.push(("runtime/fcfs_1m_jobs_8_shards".into(), sharded_wall_ns, 1));

    // --- Floorplanner on the standard mix's real configuration
    //     footprints: the joint 4-band placement every region-mode
    //     simulation freezes up front, timed for the perf baseline.
    let mix_footprints: Vec<Footprint> = profiles
        .iter()
        .enumerate()
        .flat_map(|(app, p)| {
            p.config
                .partition_areas
                .iter()
                .map(move |&area| Footprint::new(app, area))
        })
        .collect();
    let floorplan_grid = FabricGrid::uniform(sim_platform.fpga.usable_area(), 4);
    let (ns, iters) = measure(|| Floorplanner.place(&floorplan_grid, &mix_footprints));
    report.push(("floorplan/place_standard_mix_4_regions".into(), ns, iters));

    // --- Emit BENCH_engine.json (no serde in the offline vendor set, so
    //     the JSON is assembled by hand).
    let mut json = String::from("{\n  \"schema\": \"amdrel-bench-report/v1\",\n  \"unit\": \"mean ns per op\",\n  \"benches\": [\n");
    for (i, (name, ns, iters)) in report.iter().enumerate() {
        let comma = if i + 1 == report.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{name}\", \"mean_ns\": {ns:.1}, \"iters\": {iters} }}{comma}"
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json)?;

    // --- Emit BENCH_explore.json: per-strategy evaluation counts and
    //     frontier sizes for the same seeded configuration every PR runs.
    let mut json = String::from("{\n  \"schema\": \"amdrel-explore-report/v1\",\n");
    let _ = writeln!(
        json,
        "  \"app\": \"{}\",",
        amdrel::explore::json::escape(&workload.name)
    );
    let _ = writeln!(
        json,
        "  \"space\": {{ \"points\": {}, \"cells\": {}, \"constraint\": {} }},",
        space.len(),
        space.cells(),
        space.constraint
    );
    let _ = writeln!(
        json,
        "  \"config\": {{ \"seed\": {}, \"eval_budget\": {} }},",
        config.seed, config.eval_budget
    );
    json.push_str("  \"strategies\": [\n");
    for (i, r) in explore_rows.iter().enumerate() {
        let comma = if i + 1 == explore_rows.len() { "" } else { "," };
        let best = r.best_cycles().map(|p| p.cycles).unwrap_or(u64::MAX);
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"points_evaluated\": {}, \"engine_runs\": {}, \
             \"cell_hits\": {}, \"frontier\": {}, \"best_final_cycles\": {} }}{comma}",
            r.strategy,
            r.stats.points_evaluated,
            r.stats.engine_runs,
            r.stats.cell_hits,
            r.frontier.len(),
            best,
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_explore.json", &json)?;

    // --- Emit BENCH_explore_contention.json: both frontiers of the
    //     co-exploration plus the platform points only the
    //     contention-aware search surfaces.
    let frontier_row = |p: &PointEval| -> String {
        let mut row = format!(
            "{{ \"area\": {}, \"datapath\": \"{}\", \"kernels_moved\": {}, \
             \"final_cycles\": {}, \"energy\": {}",
            p.area,
            amdrel::core::json::escape(&p.datapath),
            p.kernels_moved,
            p.cycles,
            p.energy_total(),
        );
        if let Some(c) = &p.contention {
            let _ = write!(
                row,
                ", \"p95_latency\": {}, \"cycles_per_job\": {}",
                c.p95_latency, c.cycles_per_job
            );
        }
        row.push_str(" }");
        row
    };
    let static_points: std::collections::BTreeSet<_> =
        static_frontier.frontier.iter().map(|p| p.point).collect();
    let added: Vec<&PointEval> = contention_frontier
        .frontier
        .iter()
        .filter(|p| !static_points.contains(&p.point))
        .collect();
    let mut json = String::from("{\n  \"schema\": \"amdrel-explore-contention-report/v1\",\n");
    let _ = writeln!(
        json,
        "  \"app\": \"{}\",",
        amdrel::core::json::escape(&workload.name)
    );
    let _ = writeln!(
        json,
        "  \"space\": {{ \"points\": {}, \"cells\": {}, \"constraint\": {} }},",
        space.len(),
        space.cells(),
        space.constraint
    );
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"seed\": {}, \"njobs\": {}, \"load_percent\": {}, \
         \"policy\": \"{}\", \"background\": {} }},",
        contention.seed(),
        contention.njobs(),
        contention.load_percent(),
        contention.policy_name(),
        amdrel::core::json::string_array(
            &contention
                .background()
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
        ),
    );
    let _ = writeln!(
        json,
        "  \"objectives\": {},",
        amdrel::core::json::string_array(&contention_frontier.objectives)
    );
    let _ = writeln!(
        json,
        "  \"effort\": {{ \"engine_runs\": {}, \"sim_runs\": {} }},",
        contention_frontier.stats.engine_runs, contention_frontier.stats.sim_runs
    );
    for (key, frontier) in [
        ("static_frontier", &static_frontier.frontier),
        ("contention_frontier", &contention_frontier.frontier),
    ] {
        let _ = writeln!(json, "  \"{key}\": [");
        for (i, p) in frontier.iter().enumerate() {
            let comma = if i + 1 == frontier.len() { "" } else { "," };
            let _ = writeln!(json, "    {}{comma}", frontier_row(p));
        }
        json.push_str("  ],\n");
    }
    let _ = writeln!(json, "  \"added_platform_points\": [");
    for (i, p) in added.iter().enumerate() {
        let comma = if i + 1 == added.len() { "" } else { "," };
        let _ = writeln!(json, "    {}{comma}", frontier_row(p));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_explore_contention.json", &json)?;

    // --- Emit BENCH_runtime.json: the servable-workload baseline on the
    //     seeded 3-app mix, per policy, plus the million-job scaling row.
    let mut json = String::from("{\n  \"schema\": \"amdrel-runtime-report/v5\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"seed\": {}, \"jobs\": {}, \"mean_interarrival\": {}, \"apps\": [{}] }},",
        spec.seed,
        spec.jobs,
        spec.mean_interarrival,
        profiles
            .iter()
            .map(|p| format!("\"{}\"", amdrel::core::json::escape(&p.name)))
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("  \"policies\": [\n");
    for (i, (r, sim_jobs_per_sec)) in runtime_rows.iter().enumerate() {
        let comma = if i + 1 == runtime_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"completed\": {}, \"rejected\": {}, \"makespan\": {}, \
             \"jobs_per_mcycle\": {:.4}, \"p50_latency\": {}, \"p95_latency\": {}, \
             \"reconfig_loads\": {}, \"reconfig_stall_cycles\": {}, \"stall_share\": {:.4}, \
             \"fpga_utilization\": {:.4}, \"cgc_utilization\": {:.4}, \
             \"sim_jobs_per_sec\": {:.0} }}{comma}",
            r.policy,
            r.completed(),
            r.rejected(),
            r.makespan,
            r.jobs_per_mcycle(),
            r.p50_latency,
            r.p95_latency,
            r.reconfig_loads,
            r.reconfig_stall_cycles,
            r.stall_share(),
            r.fpga_utilization(),
            r.cgc_utilization(),
            sim_jobs_per_sec,
        );
    }
    json.push_str("  ],\n");
    // The reliability row: the same seeded 400-job mix played under FCFS
    // with the deterministic fault layer injecting on every channel at
    // 30 permille and graceful degradation on, so CI can gate the
    // recovery invariants (availability in (0, 1], goodput <= raw
    // throughput, salvage accounting consistent with what was injected).
    let fault_rate: u16 = 30;
    let faults = FaultSpec::uniform(7, fault_rate);
    let recovery = RecoveryPolicy {
        degrade: true,
        ..RecoveryPolicy::default()
    };
    let fcfs = policy_by_name("fcfs").expect("built-in policy");
    let faulted = sim
        .policy(fcfs.as_ref())
        .faults(faults)
        .recovery(recovery)
        .run(&sim_jobs);
    let rel = &faulted.reliability;
    let _ = writeln!(
        json,
        "  \"reliability\": {{ \"policy\": \"{}\", \"fault_rate_permille\": {fault_rate}, \
         \"fault_seed\": {}, \"max_retries\": {}, \"degrade\": {}, \
         \"injected\": {}, \"load_failures\": {}, \"fabric_kills\": {}, \"slot_outages\": {}, \
         \"retries\": {}, \"degraded\": {}, \"aborted\": {}, \"deadline_misses\": {}, \
         \"completed\": {}, \"makespan\": {}, \"availability\": {:.4}, \
         \"goodput_jobs_per_mcycle\": {:.4}, \"throughput_jobs_per_mcycle\": {:.4} }},",
        faulted.policy,
        faults.seed,
        recovery.max_retries,
        recovery.degrade,
        rel.injected,
        rel.load_failures,
        rel.fabric_kills,
        rel.slot_outages,
        rel.retries,
        rel.degraded,
        rel.aborted,
        rel.deadline_misses,
        faulted.completed(),
        faulted.makespan,
        faulted.availability(),
        faulted.goodput_jobs_per_mcycle(),
        faulted.throughput_jobs_per_mcycle(),
    );
    // The floorplan row: the same seeded 400-job mix under affinity,
    // once with streamed full-fabric loads and once under the 4-region
    // partial-reconfiguration plan, so CI can gate the placement win
    // (region stall share strictly below streamed) and pin the
    // deterministic fragmentation statistics.
    let affinity = policy_by_name("affinity").expect("built-in policy");
    let affinity_sim = sim.policy(affinity.as_ref());
    let streamed_report = affinity_sim.run(&sim_jobs);
    let region_plan = RegionPlan::new(&profiles, &floorplan_grid);
    let region_report = affinity_sim.regions(&region_plan).run(&sim_jobs);
    let frag = region_plan.stats();
    let _ = writeln!(
        json,
        "  \"floorplan\": {{ \"regions\": {}, \"policy\": \"{}\", \
         \"streamed_loads\": {}, \"streamed_stall_cycles\": {}, \"streamed_stall_share\": {:.4}, \
         \"region_loads\": {}, \"region_stall_cycles\": {}, \"region_stall_share\": {:.4}, \
         \"placement_failures\": {}, \"internal_fragmentation_permille\": {}, \
         \"external_fragmentation_permille\": {}, \"worst_region_permille\": {} }},",
        region_plan.regions(),
        streamed_report.policy,
        streamed_report.reconfig_loads,
        streamed_report.reconfig_stall_cycles,
        streamed_report.stall_share(),
        region_report.reconfig_loads,
        region_report.reconfig_stall_cycles,
        region_report.stall_share(),
        frag.placement_failures(),
        frag.internal_permille(),
        frag.external_permille(),
        frag.worst_region_permille(),
    );
    // The scaling row: throughput_ratio normalises the wall-clock rate to
    // the 400-job FCFS row above; scale_up is the jobs/sec-normalised
    // scale factor (jobs ratio × throughput ratio) CI asserts stays ≥100.
    let fcfs_400_jobs_per_sec = runtime_rows[0].1;
    let throughput_ratio = scaling_jobs_per_sec / fcfs_400_jobs_per_sec;
    let scale_up = (scaling_spec.jobs as f64 / spec.jobs as f64) * throughput_ratio;
    let _ = writeln!(
        json,
        "  \"scaling\": {{ \"tenants\": {}, \"jobs\": {}, \"seed\": {}, \
         \"mean_interarrival\": {}, \"load_percent\": 90, \"policy\": \"{}\", \
         \"completed\": {}, \"rejected\": {}, \"makespan\": {}, \
         \"p50_latency\": {}, \"p95_latency\": {}, \"latency_source\": \"{}\", \
         \"sim_jobs_per_sec\": {:.0}, \"throughput_ratio\": {:.3}, \"scale_up\": {:.0} }},",
        tenants.len(),
        scaling_spec.jobs,
        scaling_spec.seed,
        scaling_spec.mean_interarrival,
        scaling_report.policy,
        scaling_report.completed(),
        scaling_report.rejected(),
        scaling_report.makespan,
        scaling_report.p50_latency,
        scaling_report.p95_latency,
        scaling_report.latency_source.as_str(),
        scaling_jobs_per_sec,
        throughput_ratio,
        scale_up,
    );
    // The sharded row: the scaling workload under `--shards 8`.
    // `completed` / `rejected` / `latency_source` / `busy_cycles` are
    // shard-count-invariant and CI asserts they match the scaling row;
    // makespan and the percentiles are deterministic but belong to the
    // 8-replica scenario (tenants on different shards no longer
    // contend). `shard_agg_jobs_per_sec` is the scheduler-independent
    // throughput figure CI gates at >= 2x the scaling row's rate.
    let _ = writeln!(
        json,
        "  \"sharded\": {{ \"shards\": {shard_count}, \"tenants\": {}, \"jobs\": {}, \
         \"seed\": {}, \"mean_interarrival\": {}, \"load_percent\": 90, \"policy\": \"{}\", \
         \"completed\": {}, \"rejected\": {}, \"makespan\": {}, \
         \"p50_latency\": {}, \"p95_latency\": {}, \"latency_source\": \"{}\", \
         \"busy_cycles\": {}, \"sim_jobs_per_sec\": {:.0}, \
         \"shard_agg_jobs_per_sec\": {:.0}, \"agg_speedup\": {:.2} }}",
        tenants.len(),
        scaling_spec.jobs,
        scaling_spec.seed,
        scaling_spec.mean_interarrival,
        sharded_report.policy,
        sharded_report.completed(),
        sharded_report.rejected(),
        sharded_report.makespan,
        sharded_report.p50_latency,
        sharded_report.p95_latency,
        sharded_report.latency_source.as_str(),
        sharded_report.fpga_busy_cycles + sharded_report.cgc_busy_cycles,
        sharded_jobs_per_sec,
        shard_agg_jobs_per_sec,
        shard_agg_jobs_per_sec / scaling_jobs_per_sec,
    );
    json.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &json)?;

    println!("{:<40} {:>14} {:>10}", "bench", "mean ns/op", "iters");
    for (name, ns, iters) in &report {
        println!("{name:<40} {ns:>14.1} {iters:>10}");
    }
    println!(
        "\nwrote BENCH_engine.json, BENCH_explore.json, BENCH_explore_contention.json \
         and BENCH_runtime.json"
    );
    Ok(())
}
