//! The paper's extensions in action: frame-pipelined operation of the
//! two fabrics (§3 / "on-going work") and energy-constrained partitioning
//! (§5 "future work"), demonstrated on the OFDM transmitter.
//!
//! Run with: `cargo run --release --example pipeline_energy`

use amdrel::prelude::*;
use amdrel_core::{partition_for_energy, pipeline_report, EnergyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ofdm::workload(2004);
    let (program, execution) = workload.compile_and_profile()?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let platform = Platform::paper(1500, 3);

    // ---- timing-constrained partitioning (the paper's core flow) ----
    let result =
        PartitioningEngine::new(&program.cdfg, &analysis, &platform).run(paper::OFDM_CONSTRAINT)?;
    println!(
        "timing flow: initial {} -> final {} cycles ({:.1}%)",
        result.initial_cycles,
        result.final_cycles(),
        result.reduction_percent()
    );

    // ---- frame pipelining over a 100-frame stream ----
    println!("\n== frame pipelining (on-going work in the paper) ==");
    let frames = 100;
    let r = pipeline_report(&result.breakdown, frames);
    println!(
        "per-frame stages: FPGA {} cycles, CGC+comm {} cycles",
        result.breakdown.t_fpga,
        result.breakdown.t_coarse + result.breakdown.t_comm
    );
    println!(
        "initiation interval {} cycles, bottleneck {:?}",
        r.interval, r.bottleneck
    );
    println!(
        "{} frames: sequential {} vs pipelined {} cycles -> {:.2}x speedup ({:.2}x asymptotic)",
        frames,
        r.sequential_cycles,
        r.pipelined_cycles,
        r.speedup(),
        r.asymptotic_speedup()
    );
    println!(
        "steady-state utilisation: FPGA {:.0}%, CGC {:.0}%",
        r.fpga_utilization * 100.0,
        r.cgc_utilization * 100.0
    );

    // ---- energy-constrained partitioning ----
    println!("\n== energy-constrained partitioning (future work in the paper) ==");
    let model = EnergyModel::default();
    let floor = partition_for_energy(&program.cdfg, &analysis, &platform, &model, 0)?;
    println!(
        "all-FPGA energy {} units (ops {} + reconfig {})",
        floor.initial.total(),
        floor.initial.e_fpga_ops,
        floor.initial.e_reconfig
    );
    println!(
        "energy floor {} units after {} moves ({:.1}% reduction)",
        floor.energy.total(),
        floor.moves.len(),
        floor.reduction_percent()
    );
    let budget = (floor.initial.total() + floor.energy.total()) / 2;
    let halfway = partition_for_energy(&program.cdfg, &analysis, &platform, &model, budget)?;
    println!(
        "budget {budget}: met={} with {} moves, final {} units (cgc {} + comm {} + fpga {} + reconfig {})",
        halfway.met,
        halfway.moves.len(),
        halfway.energy.total(),
        halfway.energy.e_cgc_ops,
        halfway.energy.e_comm,
        halfway.energy.e_fpga_ops,
        halfway.energy.e_reconfig,
    );
    Ok(())
}
