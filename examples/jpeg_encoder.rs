//! Reproduce the paper's JPEG experiment (Tables 1 and 3).
//!
//! Compiles the re-implemented JPEG encoder, profiles it on a 256×256
//! synthetic image (the paper's workload), prints the Table 1 analysis,
//! then sweeps the four platform configurations of Table 3 against the
//! paper's 11×10⁶-cycle constraint.
//!
//! Run with: `cargo run --release --example jpeg_encoder`
//! (Pass a smaller dimension, e.g. `-- 64`, for a quick run.)

use amdrel_apps::{jpeg, paper};
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{format_paper_table, run_grid, Platform};
use amdrel_profiler::{AnalysisReport, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(jpeg::PAPER_DIM);
    let workload = jpeg::workload(dim, 2004);
    println!("== {} ==", workload.name);

    let (program, execution) = workload.compile_and_profile()?;
    println!(
        "compiled: {} basic blocks, {} ops; profile retired {} instructions; {} bits emitted",
        program.cdfg.len(),
        program.cdfg.total_ops(),
        execution.instrs_retired,
        execution.return_value.unwrap_or(0),
    );

    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    println!();
    println!(
        "{}",
        analysis.format_table1("Table 1 analogue — ordered total weights", 8)
    );

    // Scale the constraint with the image area so small trial runs keep
    // the paper's constraint-to-workload proportion.
    let constraint =
        paper::JPEG_CONSTRAINT * (dim * dim) as u64 / (jpeg::PAPER_DIM * jpeg::PAPER_DIM) as u64;
    let base = Platform::paper(1500, 2);
    let grid = run_grid(
        "JPEG encoder",
        &program.cdfg,
        &analysis,
        &base,
        &[1500, 5000],
        &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        constraint,
    )?;
    println!("{}", format_paper_table(&grid));

    println!("paper Table 3 for comparison (constraint 11e6):");
    for r in &paper::JPEG_TABLE3 {
        println!(
            "  A={:<5} {} CGCs: initial {:>9}, CGC {:>8}, final {:>9}, {:>5.1}% reduction",
            r.area, r.cgcs, r.initial_cycles, r.cycles_in_cgc, r.final_cycles, r.reduction_percent
        );
    }
    Ok(())
}
