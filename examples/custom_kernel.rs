//! Bring-your-own kernel: write mini-C inline (or load a file passed as
//! the first argument), inspect the analysis, and partition it on a
//! custom platform.
//!
//! Run with: `cargo run --release --example custom_kernel [path/to/src.c]`

use amdrel::prelude::*;
use amdrel_core::run_flow_with;

const DEFAULT_SRC: &str = r#"
    /* 2-D 3x3 convolution over a 62x62 interior of a 64x64 image. */
    int img[4096];
    int kern[9];
    int out[4096];
    int main() {
        for (int y = 1; y < 63; y++) {
            for (int x = 1; x < 63; x++) {
                int acc = 0;
                acc += img[(y - 1) * 64 + x - 1] * kern[0];
                acc += img[(y - 1) * 64 + x]     * kern[1];
                acc += img[(y - 1) * 64 + x + 1] * kern[2];
                acc += img[y * 64 + x - 1]       * kern[3];
                acc += img[y * 64 + x]           * kern[4];
                acc += img[y * 64 + x + 1]       * kern[5];
                acc += img[(y + 1) * 64 + x - 1] * kern[6];
                acc += img[(y + 1) * 64 + x]     * kern[7];
                acc += img[(y + 1) * 64 + x + 1] * kern[8];
                out[y * 64 + x] = acc >> 4;
            }
        }
        return out[65];
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_SRC.to_owned(),
    };

    // A custom platform: mid-size FPGA, one wide 4x4 CGC, pricier
    // shared-memory traffic, and the engine's "skip unprofitable moves"
    // extension enabled.
    let platform = Platform::new(
        FpgaDevice::new(3000),
        CgcDatapath::uniform(1, CgcGeometry::new(4, 4)),
    )
    .with_comm(CommModel {
        cycles_per_word: 2,
        setup_cycles: 8,
    });

    let img: Vec<i64> = (0..4096).map(|i| (i * 31 % 251) as i64).collect();
    let kern: Vec<i64> = vec![1, 2, 1, 2, 4, 2, 1, 2, 1];
    let outcome = run_flow_with(
        &source,
        &[("img", &img), ("kern", &kern)],
        &platform,
        40_000,
        EngineConfig {
            skip_unprofitable: true,
        },
    )?;

    println!("{}", outcome.analysis.format_table1("hottest kernels", 8));
    let r = &outcome.result;
    println!(
        "initial {} -> final {} cycles ({:.1}% reduction, constraint {} {})",
        r.initial_cycles,
        r.final_cycles(),
        r.reduction_percent(),
        r.constraint,
        if r.met { "met" } else { "NOT met" },
    );
    for m in &r.moves {
        println!("  moved {} ({})", m.kernel, m.label);
    }
    Ok(())
}
