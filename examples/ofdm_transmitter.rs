//! Reproduce the paper's OFDM experiment (Tables 1 and 2).
//!
//! Compiles the re-implemented IEEE 802.11a OFDM transmitter front-end,
//! profiles it on 6 payload symbols, prints the Table 1 analysis, then
//! sweeps the four platform configurations of Table 2
//! (`A_FPGA ∈ {1500, 5000}` × {two, three} 2×2 CGCs) against the paper's
//! 60 000-cycle constraint.
//!
//! Run with: `cargo run --release --example ofdm_transmitter`

use amdrel_apps::{ofdm, paper};
use amdrel_coarsegrain::CgcDatapath;
use amdrel_core::{format_paper_table, run_grid, Platform};
use amdrel_profiler::{AnalysisReport, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ofdm::workload(2004);
    println!("== {} ==", workload.name);

    let (program, execution) = workload.compile_and_profile()?;
    println!(
        "compiled: {} basic blocks, {} ops; profile retired {} instructions",
        program.cdfg.len(),
        program.cdfg.total_ops(),
        execution.instrs_retired,
    );

    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    println!();
    println!(
        "{}",
        analysis.format_table1("Table 1 analogue — ordered total weights", 8)
    );

    let base = Platform::paper(1500, 2);
    let grid = run_grid(
        "OFDM transmitter",
        &program.cdfg,
        &analysis,
        &base,
        &[1500, 5000],
        &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        paper::OFDM_CONSTRAINT,
    )?;
    println!("{}", format_paper_table(&grid));

    println!("paper Table 2 for comparison:");
    for r in &paper::OFDM_TABLE2 {
        println!(
            "  A={:<5} {} CGCs: initial {:>7}, CGC {:>6}, final {:>6}, {:>5.1}% reduction",
            r.area, r.cgcs, r.initial_cycles, r.cycles_in_cgc, r.final_cycles, r.reduction_percent
        );
    }
    Ok(())
}
