//! Inspect the hottest kernel of a case-study application: its ILP
//! profile, its fine-grain temporal partitioning (bitstream plan), and
//! its coarse-grain schedule as a Gantt chart.
//!
//! Run with: `cargo run --release --example kernel_inspector [ofdm|jpeg|sobel]`

use amdrel::prelude::*;
use amdrel_cdfg::ilp_profile;
use amdrel_coarsegrain::{gantt, schedule_dfg, CgcDatapath};
use amdrel_finegrain::{map_dfg, report::partition_table, FpgaDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ofdm".to_owned());
    let workload = match which.as_str() {
        "ofdm" => ofdm::workload(2004),
        "jpeg" => jpeg::workload(64, 2004),
        "sobel" => amdrel::apps::sobel::workload(64, 2004),
        other => return Err(format!("unknown app '{other}' (ofdm|jpeg|sobel)").into()),
    };

    let (program, execution) = workload.compile_and_profile()?;
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let hot = analysis.top_kernels(1)[0].block;
    let bb = program.cdfg.block(hot);
    println!(
        "hottest kernel of {}: {} ({}), freq {}, weight {}",
        workload.name,
        hot,
        bb.label,
        analysis.block(hot).exec_freq,
        analysis.block(hot).bb_weight,
    );
    println!(
        "DFG: {} nodes ({} schedulable ops), {} edges, live-in {} / live-out {}",
        bb.dfg.len(),
        bb.dfg.op_count(),
        bb.dfg.edge_count(),
        bb.live_in,
        bb.live_out,
    );

    let profile = ilp_profile(&bb.dfg)?;
    println!("\nILP profile (ops per ASAP level): {profile:?}");
    println!(
        "peak ILP {} vs 8 slots on two 2x2 CGCs -> {}",
        profile.iter().max().copied().unwrap_or(0),
        if profile.iter().max().copied().unwrap_or(0) > 8 {
            "resource-limited (more CGCs help)"
        } else {
            "dependency-limited (more CGCs idle)"
        }
    );

    println!("\n== fine-grain mapping (A_FPGA = 1500) ==");
    let mapping = map_dfg(&bb.dfg, &FpgaDevice::new(1500))?;
    print!("{}", partition_table(&bb.dfg, &mapping));

    println!("\n== coarse-grain schedule (two 2x2 CGCs) ==");
    let dp = CgcDatapath::two_2x2();
    let schedule = schedule_dfg(&bb.dfg, &dp, &SchedulerConfig::default())?;
    println!(
        "{} T_CGC cycles, {} ops chained through the steering logic",
        schedule.length(),
        schedule.chained_ops()
    );
    print!("{}", gantt(&bb.dfg, &schedule, &dp));
    Ok(())
}
