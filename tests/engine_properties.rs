//! Property-based tests on the partitioning engine over randomly
//! generated applications.

use amdrel::prelude::*;
use amdrel_cdfg::synth::{random_dfg, SplitMix64, SynthConfig};
use proptest::prelude::*;

/// Build a random application CDFG: `blocks` random DFG bodies strung
/// into one loop (so everything is a kernel candidate), plus random
/// execution frequencies.
fn random_app(seed: u64, blocks: usize) -> (Cdfg, Vec<u64>) {
    let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A);
    let mut cdfg = Cdfg::new(format!("app{seed}"));
    let mut freqs = Vec::with_capacity(blocks);
    for i in 0..blocks {
        let nodes = 4 + (rng.below(40) as usize);
        let dfg = random_dfg(
            seed.wrapping_add(i as u64),
            &SynthConfig {
                nodes,
                mul_fraction: 0.3,
                load_fraction: 0.15,
                ..SynthConfig::default()
            },
        );
        cdfg.add_block(BasicBlock::from_dfg(format!("b{i}"), dfg));
        freqs.push(1 + rng.below(2000));
    }
    for i in 0..blocks - 1 {
        cdfg.add_edge(BlockId(i as u32), BlockId(i as u32 + 1))
            .expect("edge");
    }
    if blocks > 1 {
        cdfg.add_edge(BlockId(blocks as u32 - 1), BlockId(1))
            .expect("back edge");
    } else {
        cdfg.add_edge(BlockId(0), BlockId(0)).expect("self loop");
    }
    (cdfg, freqs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// eq. (2) accounting holds at every trace step, moves are a prefix of
    /// the kernel ranking, and the assignment matches the moves.
    #[test]
    fn engine_invariants(seed in any::<u64>(), blocks in 2usize..12) {
        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let platform = Platform::paper(2000, 2);
        let r = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .run(1)
            .expect("engine runs");

        for m in &r.moves {
            prop_assert_eq!(
                m.breakdown.t_total(),
                m.breakdown.t_fpga + m.breakdown.t_coarse + m.breakdown.t_comm
            );
        }
        let moved = r.moved_blocks();
        prop_assert_eq!(&moved[..], &analysis.kernels()[..moved.len()]);
        for (i, a) in r.assignment.iter().enumerate() {
            let in_moves = moved.contains(&BlockId(i as u32));
            prop_assert_eq!(in_moves, *a == Assignment::CoarseGrain);
        }
    }

    /// A constraint the all-FPGA mapping already meets exits at step 2
    /// with no moves; an impossible constraint drains every kernel.
    #[test]
    fn constraint_extremes(seed in any::<u64>(), blocks in 2usize..10) {
        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let platform = Platform::paper(2000, 2);

        let relaxed = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .run(u64::MAX)
            .expect("engine runs");
        prop_assert!(relaxed.met_without_partitioning);
        prop_assert!(relaxed.moves.is_empty());

        let impossible = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .run(1)
            .expect("engine runs");
        prop_assert!(!impossible.met);
        prop_assert_eq!(impossible.moves.len(), analysis.kernels().len());
    }

    /// With `skip_unprofitable` the final time never exceeds the initial
    /// all-FPGA time, whatever the communication cost.
    #[test]
    fn skipping_engine_never_regresses(
        seed in any::<u64>(),
        blocks in 2usize..10,
        cpw in 0u64..64,
    ) {
        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let platform = Platform::paper(2000, 2).with_comm(CommModel {
            cycles_per_word: cpw,
            setup_cycles: cpw,
        });
        let r = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .with_config(EngineConfig { skip_unprofitable: true })
            .run(1)
            .expect("engine runs");
        prop_assert!(r.final_cycles() <= r.initial_cycles);
    }

    /// Differential property: the incremental engine's result — every
    /// `MoveRecord.breakdown` included — must equal a naive O(n)
    /// recomputation of eq. (2) from the assignment prefix, built here
    /// from the public mapping APIs only.
    #[test]
    fn incremental_breakdowns_match_naive_recomputation(
        seed in any::<u64>(),
        blocks in 2usize..10,
        cpw in 0u64..32,
        skip in any::<bool>(),
    ) {
        use amdrel::coarsegrain::CdfgCoarseGrainMapping;
        use amdrel::finegrain::CdfgFineGrainMapping;

        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let platform = Platform::paper(2000, 2).with_comm(CommModel {
            cycles_per_word: cpw,
            setup_cycles: 2,
        });
        let r = PartitioningEngine::new(&cdfg, &analysis, &platform)
            .with_config(EngineConfig { skip_unprofitable: skip })
            .run(1)
            .expect("engine runs");

        let fine = CdfgFineGrainMapping::map(&cdfg, &platform.fpga).expect("fine maps");
        let coarse =
            CdfgCoarseGrainMapping::map(&cdfg, &platform.datapath, &platform.scheduler)
                .expect("coarse maps");
        let exec_freq: Vec<u64> = analysis.blocks().iter().map(|b| b.exec_freq).collect();

        // Recompute each recorded breakdown from scratch: after move k,
        // exactly the first k+1 recorded kernels are on the CGC.
        let mut on_coarse = vec![false; cdfg.len()];
        for m in &r.moves {
            on_coarse[m.kernel.index()] = true;
            let t_fpga = fine.t_fpga(&exec_freq, |i| !on_coarse[i]);
            let t_coarse_cgc = coarse.t_coarse(&exec_freq, |i| on_coarse[i]);
            let t_comm: u64 = cdfg
                .iter()
                .enumerate()
                .filter(|(i, _)| on_coarse[*i])
                .map(|(i, (_, bb))| {
                    exec_freq[i] * platform.comm.cycles_per_exec(bb.live_in, bb.live_out)
                })
                .sum();
            prop_assert_eq!(m.breakdown.t_fpga, t_fpga, "kernel {}", m.kernel);
            prop_assert_eq!(m.breakdown.t_coarse_cgc, t_coarse_cgc, "kernel {}", m.kernel);
            prop_assert_eq!(
                m.breakdown.t_coarse,
                platform.cgc_to_fpga_cycles(t_coarse_cgc),
                "kernel {}", m.kernel
            );
            prop_assert_eq!(m.breakdown.t_comm, t_comm, "kernel {}", m.kernel);
        }
        // The final breakdown equals the last recorded move's.
        if let Some(last) = r.moves.last() {
            prop_assert_eq!(last.breakdown, r.breakdown);
        }
    }

    /// Initial (all-FPGA) cycles are monotonically non-increasing in the
    /// device area.
    #[test]
    fn initial_cycles_monotone_in_area(seed in any::<u64>(), blocks in 2usize..8) {
        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let mut last = u64::MAX;
        for area in [1200u64, 2000, 4000, 8000, 16000] {
            let platform = Platform::paper(area, 2);
            let r = PartitioningEngine::new(&cdfg, &analysis, &platform)
                .run(u64::MAX)
                .expect("engine runs");
            prop_assert!(
                r.initial_cycles <= last,
                "area {area}: {} > {last}", r.initial_cycles
            );
            last = r.initial_cycles;
        }
    }

    /// More CGCs keep the coarse-grain cycle count of the fully-moved
    /// application within a small envelope of the smaller datapath's
    /// (greedy list scheduling is subject to Graham's anomalies, so
    /// strict monotonicity cannot be asserted; see the coarsegrain
    /// property suite).
    #[test]
    fn coarse_cycles_quasi_monotone_in_cgcs(seed in any::<u64>(), blocks in 2usize..8) {
        let (cdfg, freqs) = random_app(seed, blocks);
        let analysis = AnalysisReport::analyze(&cdfg, &freqs, &WeightTable::paper());
        let mut last = u64::MAX;
        for cgcs in [1usize, 2, 4] {
            let platform = Platform::paper(2000, cgcs);
            let r = PartitioningEngine::new(&cdfg, &analysis, &platform)
                .run(1)
                .expect("engine runs");
            let envelope = last.saturating_add(last / 4);
            prop_assert!(
                r.breakdown.t_coarse_cgc <= envelope,
                "{} CGCs: {} far above previous {}",
                cgcs,
                r.breakdown.t_coarse_cgc,
                last
            );
            last = r.breakdown.t_coarse_cgc.min(last);
        }
    }
}
