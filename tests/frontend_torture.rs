//! Frontend integration torture tests: gnarly mini-C programs through
//! compile → interpret, validated against values computed in Rust.

use amdrel::minic::compile;
use amdrel::profiler::Interpreter;

fn run(src: &str) -> i64 {
    let ir = amdrel::minic::compile_to_ir(src, "main").expect("compiles");
    Interpreter::new(&ir)
        .run(&[])
        .expect("runs")
        .return_value
        .expect("returns a value")
}

#[test]
fn collatz_iteration_counts() {
    // Iterative Collatz steps for n = 27 (known: 111 steps).
    let src = r#"
        int main() {
            int n = 27;
            int steps = 0;
            while (n != 1) {
                if ((n & 1) == 1) {
                    n = 3 * n + 1;
                } else {
                    n = n >> 1;
                }
                steps++;
            }
            return steps;
        }
    "#;
    assert_eq!(run(src), 111);
}

#[test]
fn gcd_via_remainder() {
    let src = r#"
        int gcd(int a, int b) {
            while (b != 0) {
                int t = a % b;
                a = b;
                b = t;
            }
            return a;
        }
        int main() { return gcd(1071, 462) * 1000 + gcd(17, 5); }
    "#;
    assert_eq!(run(src), 21 * 1000 + 1);
}

#[test]
fn sieve_of_eratosthenes() {
    let src = r#"
        int sieve[100];
        int main() {
            for (int i = 2; i < 100; i++) { sieve[i] = 1; }
            for (int p = 2; p * p < 100; p++) {
                if (sieve[p] == 1) {
                    for (int m = p * p; m < 100; m += p) {
                        sieve[m] = 0;
                    }
                }
            }
            int count = 0;
            for (int i = 2; i < 100; i++) { count += sieve[i]; }
            return count;
        }
    "#;
    assert_eq!(run(src), 25); // primes below 100
}

#[test]
fn ternary_chains_and_logical_mix() {
    let src = r#"
        int main() {
            int score = 77;
            int grade = score >= 90 ? 4 : score >= 80 ? 3 : score >= 70 ? 2 : score >= 60 ? 1 : 0;
            int bonus = (score > 70 && score < 80) || score == 100 ? 10 : 0;
            return grade * 100 + bonus;
        }
    "#;
    assert_eq!(run(src), 210);
}

#[test]
fn deeply_nested_loops_and_breaks() {
    let src = r#"
        int main() {
            int found = 0;
            for (int a = 1; a <= 20; a++) {
                for (int b = a; b <= 20; b++) {
                    for (int c = b; c <= 20; c++) {
                        if (a * a + b * b == c * c) {
                            found++;
                        }
                    }
                }
            }
            return found;
        }
    "#;
    // Pythagorean triples with 1 ≤ a ≤ b ≤ c ≤ 20:
    // (3,4,5) (6,8,10) (5,12,13) (9,12,15) (8,15,17) (12,16,20)
    assert_eq!(run(src), 6);
}

#[test]
fn shadowing_and_scopes() {
    let src = r#"
        int main() {
            int x = 1;
            int sum = 0;
            {
                int x = 10;
                sum += x;
                {
                    int x = 100;
                    sum += x;
                }
                sum += x;
            }
            sum += x;
            return sum;
        }
    "#;
    assert_eq!(run(src), 10 + 100 + 10 + 1);
}

#[test]
fn do_while_and_compound_ops() {
    let src = r#"
        int main() {
            int v = 1;
            int i = 0;
            do {
                v <<= 1;
                v |= i & 1;
                i++;
            } while (i < 10);
            return v;
        }
    "#;
    let mut v = 1i64;
    for i in 0..10 {
        v <<= 1;
        v |= i & 1;
    }
    assert_eq!(run(src), v);
}

#[test]
fn multi_function_pipeline_inlines() {
    let src = r#"
        int square(int x) { return x * x; }
        int cube(int x) { return square(x) * x; }
        int clamp(int x, int lo, int hi) {
            if (x < lo) { return lo; }
            if (x > hi) { return hi; }
            return x;
        }
        int main() {
            int acc = 0;
            for (int i = 0; i < 10; i++) {
                acc += clamp(cube(i) - square(i), 0, 500);
            }
            return acc;
        }
    "#;
    let expected: i64 = (0..10)
        .map(|i: i64| (i * i * i - i * i).clamp(0, 500))
        .sum();
    assert_eq!(run(src), expected);
}

#[test]
fn matrix_multiply_3x3() {
    let src = r#"
        int a[9]; int b[9]; int c[9];
        int main() {
            for (int i = 0; i < 9; i++) { a[i] = i + 1; b[i] = 9 - i; }
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 3; j++) {
                    int s = 0;
                    for (int k = 0; k < 3; k++) {
                        s += a[i * 3 + k] * b[k * 3 + j];
                    }
                    c[i * 3 + j] = s;
                }
            }
            int trace = c[0] + c[4] + c[8];
            return trace;
        }
    "#;
    // a = [[1..3],[4..6],[7..9]], b = [[9..7],[6..4],[3..1]]
    let a = [[1i64, 2, 3], [4, 5, 6], [7, 8, 9]];
    let b = [[9i64, 8, 7], [6, 5, 4], [3, 2, 1]];
    let mut trace = 0;
    for i in 0..3 {
        let mut s = 0;
        for k in 0..3 {
            s += a[i][k] * b[k][i];
        }
        trace += s;
    }
    assert_eq!(run(src), trace);
}

#[test]
fn block_counts_align_between_ir_and_cdfg() {
    let src = r#"
        int data[16];
        int main() {
            int s = 0;
            for (int i = 0; i < 16; i++) {
                if (data[i] > 0) { s += data[i]; } else { s -= 1; }
            }
            return s;
        }
    "#;
    let compiled = compile(src, "main").expect("compiles");
    assert_eq!(compiled.ir.entry.blocks.len(), compiled.cdfg.len());
    let exec = Interpreter::new(&compiled.ir).run(&[]).expect("runs");
    assert_eq!(exec.block_counts.len(), compiled.cdfg.len());
    // The if-join runs 16 times, the condition 17.
    assert!(exec.block_counts.contains(&16));
    assert!(exec.block_counts.contains(&17));
}
