//! Cross-crate integration: the full flow on the JPEG encoder (64×64
//! image for speed — same code structure as the paper's 256×256).

use amdrel::prelude::*;

const DIM: usize = 64;

fn prepared() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
    let w = jpeg::workload(DIM, 7);
    let (program, execution) = w.compile_and_profile().expect("JPEG compiles and runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    (program, analysis)
}

/// The paper's constraint scaled from 256×256 to our image area.
fn constraint() -> u64 {
    paper::JPEG_CONSTRAINT * (DIM * DIM) as u64 / (256 * 256) as u64
}

#[test]
fn encoder_is_bit_exact_against_reference() {
    let w = jpeg::workload(DIM, 99);
    let (_program, execution) = w.compile_and_profile().expect("runs");
    let expected = jpeg::encode(&w.inputs[0].1, DIM);
    assert_eq!(execution.return_value, Some(expected.bit_count));
    let bits = execution.global("bitstream").expect("bitstream global");
    assert_eq!(&bits[..expected.bit_count as usize], &expected.bits[..]);
}

#[test]
fn dct_blocks_dominate_the_kernel_ranking() {
    let (_, analysis) = prepared();
    // The two fast-DCT bodies (row and column pass) must appear among the
    // top four kernels with the paper's characteristic frequency
    // (blocks × 8 = (dim/8)² × 8).
    let expected_freq = ((DIM / 8) * (DIM / 8) * 8) as u64;
    let top: Vec<_> = analysis.top_kernels(4);
    let dct_like = top
        .iter()
        .filter(|b| b.exec_freq == expected_freq && b.bb_weight > 80)
        .count();
    assert!(
        dct_like >= 2,
        "expected the two DCT passes in the top-4, got {top:?}"
    );
}

#[test]
fn paper_configs_meet_scaled_constraint() {
    let (program, analysis) = prepared();
    for area in [1500u64, 5000] {
        for cgcs in [2usize, 3] {
            let platform = Platform::paper(area, cgcs);
            let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
                .run(constraint())
                .expect("engine runs");
            assert!(
                r.met,
                "A={area}, {cgcs} CGCs must meet the scaled constraint (got {} > {})",
                r.final_cycles(),
                constraint()
            );
        }
    }
}

#[test]
fn jpeg_area_sensitivity_matches_paper_direction() {
    let (program, analysis) = prepared();
    let small = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 2))
        .run(u64::MAX)
        .expect("engine runs");
    let large = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(5000, 2))
        .run(u64::MAX)
        .expect("engine runs");
    let ratio = small.initial_cycles as f64 / large.initial_cycles as f64;
    // Paper's JPEG ratio: 18434/12399 = 1.49.
    assert!(
        (1.15..=2.2).contains(&ratio),
        "initial-cycle area ratio {ratio:.2} far from the paper's 1.49"
    );
}

#[test]
fn moved_kernels_are_a_prefix_of_the_ranking() {
    let (program, analysis) = prepared();
    let platform = Platform::paper(1500, 3);
    let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(constraint())
        .expect("engine runs");
    let moved = r.moved_blocks();
    assert!(!moved.is_empty());
    assert_eq!(&moved[..], &analysis.kernels()[..moved.len()]);
}

#[test]
fn breakdown_components_are_all_live() {
    // After partitioning, all three eq. (2) terms must be non-zero: work
    // remains on the FPGA, kernels run on the CGC datapath, and data
    // crosses the shared memory.
    let (program, analysis) = prepared();
    let platform = Platform::paper(1500, 3);
    let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(constraint())
        .expect("engine runs");
    assert!(r.breakdown.t_fpga > 0, "t_FPGA");
    assert!(r.breakdown.t_coarse > 0, "t_coarse");
    assert!(r.breakdown.t_comm > 0, "t_comm");
    assert_eq!(
        r.final_cycles(),
        r.breakdown.t_fpga + r.breakdown.t_coarse + r.breakdown.t_comm
    );
}
