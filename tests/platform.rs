//! Structural validation of the Figure 1 platform model: every component
//! of the generic architecture exists and behaves (fine-grain block,
//! coarse-grain block, shared data memory with its communication cost,
//! clock domains, reconfigurable interconnect parameters).

use amdrel::prelude::*;
use amdrel_coarsegrain::CgcDatapath;

#[test]
fn platform_models_every_figure1_component() {
    let p = Platform::paper(1500, 2);

    // Fine-grain reconfigurable hardware block.
    assert_eq!(p.fpga.total_area, 1500);
    assert!(p.fpga.usable_fraction > 0.0 && p.fpga.usable_fraction <= 1.0);
    assert!(
        p.fpga.reconfig_cycles > 0,
        "dynamic reconfiguration is modelled"
    );

    // Coarse-grain reconfigurable hardware blocks (CGCs).
    assert_eq!(p.datapath.cgcs.len(), 2);
    assert_eq!(p.datapath.compute_slots(), 8);
    assert!(p.datapath.register_bank > 0);

    // Shared data memory: communication has a cost.
    assert!(p.comm.cycles_per_exec(4, 4) > 0);

    // Clock domains: T_FPGA = 3 × T_CGC.
    assert_eq!(p.clock_ratio, 3);
    assert_eq!(p.cgc_to_fpga_cycles(3), 1);
    assert_eq!(p.cgc_to_fpga_cycles(4), 2);
}

#[test]
fn clock_conversion_is_exact_and_ceil() {
    let p = Platform::paper(1500, 2).with_clock_ratio(4);
    assert_eq!(p.cgc_to_fpga_cycles(0), 0);
    assert_eq!(p.cgc_to_fpga_cycles(1), 1);
    assert_eq!(p.cgc_to_fpga_cycles(4), 1);
    assert_eq!(p.cgc_to_fpga_cycles(5), 2);
}

#[test]
fn comm_model_is_linear_in_interface_width() {
    let m = CommModel {
        cycles_per_word: 3,
        setup_cycles: 5,
    };
    assert_eq!(m.cycles_per_exec(0, 0), 5);
    assert_eq!(m.cycles_per_exec(2, 1), 9 + 5);
    // free() really is free.
    assert_eq!(CommModel::free().cycles_per_exec(100, 100), 0);
}

#[test]
fn heterogeneous_datapaths_are_expressible() {
    // The generic platform claims to model Pleiades-style heterogeneous
    // collections; the datapath accepts mixed geometries.
    let dp = CgcDatapath::new(vec![
        CgcGeometry::new(2, 2),
        CgcGeometry::new(3, 3),
        CgcGeometry::new(4, 2),
    ]);
    assert_eq!(dp.compute_slots(), 4 + 9 + 8);
    let platform = Platform::new(FpgaDevice::new(2000), dp);
    assert!(platform.datapath.describe().contains("3x3"));
}

#[test]
fn platform_is_serializable_and_debuggable() {
    fn assert_serialize<T: serde::Serialize>(_: &T) {}
    let p = Platform::paper(5000, 3);
    assert_serialize(&p);
    let debug = format!("{p:?}");
    assert!(
        debug.contains("5000"),
        "Debug must expose the area: {debug}"
    );
}
