//! Shape assertions against the paper's published tables, via the
//! paper-profile reproduction path (the engine driven by the authors' own
//! Table 1 measurements).

use amdrel::prelude::*;
use amdrel_apps::paper::{
    synthesize_profile, JPEG_CONSTRAINT, JPEG_TABLE1, JPEG_TABLE3, OFDM_CONSTRAINT, OFDM_TABLE1,
    OFDM_TABLE2,
};

#[test]
fn table1_constants_are_internally_consistent() {
    for r in OFDM_TABLE1.iter().chain(&JPEG_TABLE1) {
        assert_eq!(r.exec_freq * r.ops_weight, r.total_weight);
    }
    for t in [&OFDM_TABLE1[..], &JPEG_TABLE1[..]] {
        for w in t.windows(2) {
            assert!(w[0].total_weight >= w[1].total_weight, "Table 1 is ordered");
        }
    }
}

#[test]
fn table2_and_3_constants_check_out() {
    for r in OFDM_TABLE2.iter().chain(&JPEG_TABLE3) {
        let computed = (r.initial_cycles - r.final_cycles) as f64 / r.initial_cycles as f64 * 100.0;
        assert!(
            (computed - r.reduction_percent).abs() < 0.15,
            "reduction {:.2} vs printed {:.1} (A={}, {} CGCs)",
            computed,
            r.reduction_percent,
            r.area,
            r.cgcs
        );
    }
    // Constraints are satisfied by every final-cycles figure.
    for r in &OFDM_TABLE2 {
        assert!(r.final_cycles <= OFDM_CONSTRAINT);
    }
    for r in &JPEG_TABLE3 {
        assert!(r.final_cycles <= JPEG_CONSTRAINT);
    }
}

#[test]
fn ofdm_paper_profile_moves_the_papers_kernels_first() {
    let profile = synthesize_profile(&OFDM_TABLE1, 44);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    // Analysis must reproduce Table 1's ordering exactly.
    let top: Vec<u32> = analysis.top_kernels(8).iter().map(|b| b.block.0).collect();
    let expected: Vec<u32> = OFDM_TABLE1.iter().map(|r| r.bb).collect();
    assert_eq!(top, expected);

    // Engine on the paper's platform: the first moved BBs must open with
    // the paper's "BB no." row (22, 12, …).
    for (area, cgcs) in [(1500u64, 2usize), (1500, 3), (5000, 2), (5000, 3)] {
        let platform = Platform::paper(area, cgcs);
        let r = PartitioningEngine::new(&profile.cdfg, &analysis, &platform)
            .run(OFDM_CONSTRAINT)
            .expect("engine runs");
        let moved = r.moved_blocks();
        assert!(
            moved.len() >= 2,
            "A={area}/{cgcs} CGCs: expected at least 2 moves"
        );
        assert_eq!(moved[0].0, 22, "heaviest paper kernel first");
        assert_eq!(moved[1].0, 12);
        assert!(
            r.met,
            "constraint met as in the paper (A={area}, {cgcs} CGCs)"
        );
    }
}

#[test]
fn jpeg_paper_profile_moves_the_papers_kernels_first() {
    let profile = synthesize_profile(&JPEG_TABLE1, 24);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    let platform = Platform::paper(1500, 2);
    let r = PartitioningEngine::new(&profile.cdfg, &analysis, &platform)
        .run(JPEG_CONSTRAINT)
        .expect("engine runs");
    let moved = r.moved_blocks();
    assert!(!moved.is_empty());
    assert_eq!(moved[0].0, 6, "paper's Table 3 moves BB 6 first");
    if moved.len() > 1 {
        assert_eq!(moved[1].0, 2);
    }
    assert!(r.met);
}

#[test]
fn ofdm_paper_profile_reduction_in_band() {
    let profile = synthesize_profile(&OFDM_TABLE1, 44);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    let r = PartitioningEngine::new(&profile.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(OFDM_CONSTRAINT)
        .expect("engine runs");
    // Paper: 81.8% for this configuration.
    let red = r.reduction_percent();
    assert!(
        (70.0..=90.0).contains(&red),
        "A=1500/three-CGC reduction {red:.1}% far from the paper's 81.8%"
    );
}

#[test]
fn headline_claim_max_reduction_at_small_area() {
    // "A maximum clock cycles reduction of approximately 82% … is
    // reported for the case of AFPGA=1500" — the small FPGA must always
    // show the larger reduction.
    let profile = synthesize_profile(&OFDM_TABLE1, 44);
    let analysis =
        AnalysisReport::analyze(&profile.cdfg, &profile.exec_freq, &WeightTable::paper());
    let r1500 = PartitioningEngine::new(&profile.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(OFDM_CONSTRAINT)
        .expect("engine runs");
    let r5000 = PartitioningEngine::new(&profile.cdfg, &analysis, &Platform::paper(5000, 3))
        .run(OFDM_CONSTRAINT)
        .expect("engine runs");
    assert!(r1500.reduction_percent() > r5000.reduction_percent());
}
