//! Replay every deterministic field of the committed `BENCH_*.json`
//! baselines straight from library calls — not through the CLI and not
//! through `examples/bench_report.rs` — so a drift in any committed
//! number (or in the simulator behind it) fails here with the exact
//! field named. Wall-clock fields (`mean_ns`, `*_jobs_per_sec`,
//! `throughput_ratio`, `scale_up`, `agg_speedup`) are machine-local by
//! design and are only checked for presence, never for value.
//!
//! The committed files are hand-emitted JSON with a fixed shape (the
//! offline vendor set has no serde_json), so field access here is a
//! small brace-matching extractor rather than a full parser.

use amdrel::prelude::*;
use amdrel_bench::synthetic_tenants;

fn load(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/").to_owned() + name;
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The balanced `{...}` or `[...]` prefix of `s`.
fn balanced(s: &str, open: char, close: char) -> &str {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return &s[..=i];
            }
        }
    }
    panic!("unbalanced {open}{close} in: {s:.60}…");
}

/// The object or array value of the first `"key":` in `json`.
fn section<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no section '{key}'"));
    let rest = json[at + pat.len()..].trim_start();
    match rest.chars().next() {
        Some('{') => balanced(rest, '{', '}'),
        Some('[') => balanced(rest, '[', ']'),
        other => panic!("section '{key}' starts with {other:?}, not an object or array"),
    }
}

/// The top-level objects inside a `[...]` section, in order.
fn objects_in(array: &str) -> Vec<&str> {
    let mut rows = Vec::new();
    let mut rest = &array[1..array.len() - 1];
    while let Some(at) = rest.find('{') {
        let row = balanced(&rest[at..], '{', '}');
        rows.push(row);
        rest = &rest[at + row.len()..];
    }
    rows
}

/// The raw value token of scalar `"key":` inside one object.
fn raw<'a>(obj: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let at = obj
        .find(&pat)
        .unwrap_or_else(|| panic!("no field '{key}' in: {obj:.80}…"));
    let rest = &obj[at + pat.len()..];
    let end = rest
        .find([',', '}', '\n'])
        .unwrap_or(rest.len());
    rest[..end].trim()
}

fn u64_field(obj: &str, key: &str) -> u64 {
    raw(obj, key)
        .parse()
        .unwrap_or_else(|e| panic!("field '{key}' = {}: {e}", raw(obj, key)))
}

fn str_field<'a>(obj: &'a str, key: &str) -> &'a str {
    raw(obj, key).trim_matches('"')
}

/// Assert a committed float field matches `value` under the exact
/// format string `bench_report` wrote it with.
#[track_caller]
fn assert_formatted(obj: &str, key: &str, formatted: String) {
    assert_eq!(raw(obj, key), formatted, "field '{key}' drifted");
}

/// The standard 3-app mix and 400-job spec behind the runtime rows.
fn standard_setup() -> (Platform, Vec<AppProfile>, WorkloadSpec) {
    let platform = Platform::paper(1500, 2);
    let profiles = amdrel::apps::runtime::standard_mix(&platform).expect("standard mix builds");
    let spec = WorkloadSpec::uniform(42, 400, &profiles, 130);
    (platform, profiles, spec)
}

#[test]
fn bench_engine_rows_are_the_expected_set() {
    let json = load("BENCH_engine.json");
    assert_eq!(str_field(&json, "schema"), "amdrel-bench-report/v1");
    assert_eq!(str_field(&json, "unit"), "mean ns per op");
    let names: Vec<&str> = objects_in(section(&json, "benches"))
        .iter()
        .map(|row| str_field(row, "name"))
        .collect();
    assert_eq!(
        names,
        [
            "engine/run_ofdm_a1500_c2_warm",
            "engine/move_loop_512_blocks_warm",
            "engine/per_move_512_blocks_warm",
            "sweep/run_grid_cached_cold",
            "sweep/run_grid_parallel_cold",
            "sweep/run_grid_warm_cache",
            "explore/exhaustive",
            "explore/random",
            "explore/sa",
            "explore/contention_exhaustive",
            "runtime/fcfs_400_jobs",
            "runtime/fcfs_1m_jobs_32_tenants",
            "runtime/fcfs_1m_jobs_8_shards",
            "floorplan/place_standard_mix_4_regions",
        ],
        "the committed perf-row set drifted from bench_report"
    );
    for row in objects_in(section(&json, "benches")) {
        assert!(
            raw(row, "mean_ns").parse::<f64>().unwrap() > 0.0,
            "{} has a non-positive mean",
            str_field(row, "name")
        );
        assert!(u64_field(row, "iters") >= 1);
    }
}

#[test]
fn bench_runtime_policy_rows_replay_from_the_library() {
    let json = load("BENCH_runtime.json");
    assert_eq!(str_field(&json, "schema"), "amdrel-runtime-report/v5");
    let (platform, profiles, spec) = standard_setup();
    let workload = section(&json, "workload");
    assert_eq!(u64_field(workload, "seed"), spec.seed);
    assert_eq!(u64_field(workload, "jobs"), spec.jobs as u64);
    assert_eq!(
        u64_field(workload, "mean_interarrival"),
        spec.mean_interarrival
    );
    let jobs = spec.generate(&profiles);
    let sim = Simulation::new(&platform).profiles(&profiles);
    let rows = objects_in(section(&json, "policies"));
    assert_eq!(rows.len(), 4);
    for row in rows {
        let name = str_field(row, "name");
        let policy = policy_by_name(name).expect("committed policy exists");
        let r = sim.policy(policy.as_ref()).run(&jobs);
        assert_eq!(u64_field(row, "completed"), r.completed(), "policy {name}");
        assert_eq!(u64_field(row, "rejected"), r.rejected(), "policy {name}");
        assert_eq!(u64_field(row, "makespan"), r.makespan, "policy {name}");
        assert_eq!(
            u64_field(row, "p50_latency"),
            r.p50_latency,
            "policy {name}"
        );
        assert_eq!(
            u64_field(row, "p95_latency"),
            r.p95_latency,
            "policy {name}"
        );
        assert_eq!(
            u64_field(row, "reconfig_loads"),
            r.reconfig_loads,
            "policy {name}"
        );
        assert_eq!(
            u64_field(row, "reconfig_stall_cycles"),
            r.reconfig_stall_cycles,
            "policy {name}"
        );
        assert_formatted(
            row,
            "jobs_per_mcycle",
            format!("{:.4}", r.jobs_per_mcycle()),
        );
        assert_formatted(row, "stall_share", format!("{:.4}", r.stall_share()));
        assert_formatted(
            row,
            "fpga_utilization",
            format!("{:.4}", r.fpga_utilization()),
        );
        assert_formatted(
            row,
            "cgc_utilization",
            format!("{:.4}", r.cgc_utilization()),
        );
    }
}

#[test]
fn bench_runtime_reliability_row_replays_from_the_library() {
    let json = load("BENCH_runtime.json");
    let row = section(&json, "reliability");
    let (platform, profiles, spec) = standard_setup();
    let jobs = spec.generate(&profiles);
    let faults = FaultSpec::uniform(
        u64_field(row, "fault_seed"),
        u64_field(row, "fault_rate_permille") as u16,
    );
    let recovery = RecoveryPolicy {
        max_retries: u64_field(row, "max_retries") as u32,
        degrade: raw(row, "degrade") == "true",
        ..RecoveryPolicy::default()
    };
    let policy = policy_by_name(str_field(row, "policy")).unwrap();
    let r = Simulation::new(&platform)
        .profiles(&profiles)
        .policy(policy.as_ref())
        .faults(faults)
        .recovery(recovery)
        .run(&jobs);
    let rel = &r.reliability;
    assert_eq!(u64_field(row, "injected"), rel.injected);
    assert_eq!(u64_field(row, "load_failures"), rel.load_failures);
    assert_eq!(u64_field(row, "fabric_kills"), rel.fabric_kills);
    assert_eq!(u64_field(row, "slot_outages"), rel.slot_outages);
    assert_eq!(u64_field(row, "retries"), rel.retries);
    assert_eq!(u64_field(row, "degraded"), rel.degraded);
    assert_eq!(u64_field(row, "aborted"), rel.aborted);
    assert_eq!(u64_field(row, "deadline_misses"), rel.deadline_misses);
    assert_eq!(u64_field(row, "completed"), r.completed());
    assert_eq!(u64_field(row, "makespan"), r.makespan);
    assert_formatted(row, "availability", format!("{:.4}", r.availability()));
    assert_formatted(
        row,
        "goodput_jobs_per_mcycle",
        format!("{:.4}", r.goodput_jobs_per_mcycle()),
    );
    assert_formatted(
        row,
        "throughput_jobs_per_mcycle",
        format!("{:.4}", r.throughput_jobs_per_mcycle()),
    );
}

#[test]
fn bench_runtime_floorplan_row_replays_from_the_library() {
    let json = load("BENCH_runtime.json");
    let row = section(&json, "floorplan");
    let (platform, profiles, spec) = standard_setup();
    let jobs = spec.generate(&profiles);
    let policy = policy_by_name(str_field(row, "policy")).unwrap();
    let sim = Simulation::new(&platform)
        .profiles(&profiles)
        .policy(policy.as_ref());
    let streamed = sim.run(&jobs);
    let plan = RegionPlan::new(
        &profiles,
        &FabricGrid::uniform(platform.fpga.usable_area(), 4),
    );
    let regioned = sim.regions(&plan).run(&jobs);
    assert_eq!(u64_field(row, "regions"), plan.regions() as u64);
    assert_eq!(u64_field(row, "streamed_loads"), streamed.reconfig_loads);
    assert_eq!(
        u64_field(row, "streamed_stall_cycles"),
        streamed.reconfig_stall_cycles
    );
    assert_formatted(
        row,
        "streamed_stall_share",
        format!("{:.4}", streamed.stall_share()),
    );
    assert_eq!(u64_field(row, "region_loads"), regioned.reconfig_loads);
    assert_eq!(
        u64_field(row, "region_stall_cycles"),
        regioned.reconfig_stall_cycles
    );
    assert_formatted(
        row,
        "region_stall_share",
        format!("{:.4}", regioned.stall_share()),
    );
    let frag = plan.stats();
    assert_eq!(
        u64_field(row, "placement_failures"),
        frag.placement_failures()
    );
    assert_eq!(
        u64_field(row, "internal_fragmentation_permille"),
        frag.internal_permille()
    );
    assert_eq!(
        u64_field(row, "external_fragmentation_permille"),
        frag.external_permille()
    );
    assert_eq!(
        u64_field(row, "worst_region_permille"),
        frag.worst_region_permille()
    );
}

#[test]
fn bench_runtime_scaling_and_sharded_rows_replay_from_the_library() {
    let json = load("BENCH_runtime.json");
    let scaling = section(&json, "scaling");
    let sharded = section(&json, "sharded");
    let platform = Platform::paper(1500, 2);
    let tenants = synthetic_tenants(u64_field(scaling, "tenants") as usize);
    let spec = WorkloadSpec::uniform(
        u64_field(scaling, "seed"),
        u64_field(scaling, "jobs") as usize,
        &tenants,
        u64_field(scaling, "load_percent"),
    );
    assert_eq!(
        u64_field(scaling, "mean_interarrival"),
        spec.mean_interarrival
    );
    let sim = Simulation::new(&platform)
        .profiles(&tenants)
        .policy(&Fcfs)
        .sketch_mode(SketchMode::Sketched);
    let r = sim.run_mix(&spec);
    assert_eq!(str_field(scaling, "policy"), r.policy);
    assert_eq!(u64_field(scaling, "completed"), r.completed());
    assert_eq!(u64_field(scaling, "rejected"), r.rejected());
    assert_eq!(u64_field(scaling, "makespan"), r.makespan);
    assert_eq!(u64_field(scaling, "p50_latency"), r.p50_latency);
    assert_eq!(u64_field(scaling, "p95_latency"), r.p95_latency);
    assert_eq!(
        str_field(scaling, "latency_source"),
        r.latency_source.as_str()
    );

    let k = u64_field(sharded, "shards") as usize;
    assert!(k >= 2, "the sharded row must actually shard");
    let s = sim.shards(k).run_mix(&spec);
    assert_eq!(str_field(sharded, "policy"), s.policy);
    assert_eq!(u64_field(sharded, "completed"), s.completed());
    assert_eq!(u64_field(sharded, "rejected"), s.rejected());
    assert_eq!(u64_field(sharded, "makespan"), s.makespan);
    assert_eq!(u64_field(sharded, "p50_latency"), s.p50_latency);
    assert_eq!(u64_field(sharded, "p95_latency"), s.p95_latency);
    assert_eq!(
        str_field(sharded, "latency_source"),
        s.latency_source.as_str()
    );
    assert_eq!(
        u64_field(sharded, "busy_cycles"),
        s.fpga_busy_cycles + s.cgc_busy_cycles
    );
    // The merge invariants the sharded row is committed to document.
    assert_eq!(s.completed(), r.completed());
    assert_eq!(s.rejected(), r.rejected());
    assert_eq!(s.latency_source, r.latency_source);
    assert_eq!(
        s.fpga_busy_cycles + s.cgc_busy_cycles,
        r.fpga_busy_cycles + r.cgc_busy_cycles,
        "sharding must conserve busy cycles"
    );
}

/// Compile the OFDM case study once for both explore replays.
fn ofdm_setup() -> (
    amdrel::apps::Workload,
    amdrel_minic::CompiledProgram,
    AnalysisReport,
) {
    let workload = ofdm::workload(2004);
    let program = compile(&workload.source, "main").expect("ofdm compiles");
    let execution = Interpreter::new(&program.ir)
        .run(&workload.input_refs())
        .expect("ofdm runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    (workload, program, analysis)
}

#[test]
fn bench_explore_strategy_rows_replay_from_the_library() {
    let json = load("BENCH_explore.json");
    assert_eq!(str_field(&json, "schema"), "amdrel-explore-report/v1");
    let (workload, program, analysis) = ofdm_setup();
    assert_eq!(str_field(&json, "app"), workload.name);
    let space = ofdm::design_space();
    let header = section(&json, "space");
    assert_eq!(u64_field(header, "points"), space.len() as u64);
    assert_eq!(u64_field(header, "cells"), space.cells() as u64);
    assert_eq!(u64_field(header, "constraint"), space.constraint);
    let cfg_row = section(&json, "config");
    let config = ExploreConfig {
        seed: u64_field(cfg_row, "seed"),
        eval_budget: u64_field(cfg_row, "eval_budget") as usize,
        jobs: 0,
    };
    let platform = Platform::paper(1500, 2);
    for row in objects_in(section(&json, "strategies")) {
        let name = str_field(row, "name");
        let strategy: Box<dyn SearchStrategy> = match name {
            "exhaustive" => Box::new(Exhaustive),
            "random" => Box::new(RandomSampling),
            "sa" => Box::new(SimulatedAnnealing::default()),
            other => panic!("unknown committed strategy '{other}'"),
        };
        let cache = MappingCache::new();
        let evaluator = Evaluator::new(
            &workload.name,
            &program.cdfg,
            &analysis,
            &platform,
            EnergyModel::default(),
            &cache,
        );
        let r = explore(&evaluator, &space, strategy.as_ref(), &config).expect("search runs");
        assert_eq!(
            u64_field(row, "points_evaluated"),
            r.stats.points_evaluated,
            "strategy {name}"
        );
        assert_eq!(
            u64_field(row, "engine_runs"),
            r.stats.engine_runs,
            "strategy {name}"
        );
        assert_eq!(
            u64_field(row, "cell_hits"),
            r.stats.cell_hits,
            "strategy {name}"
        );
        assert_eq!(
            u64_field(row, "frontier"),
            r.frontier.len() as u64,
            "strategy {name}"
        );
        let best = r.best_cycles().map(|p| p.cycles).unwrap_or(u64::MAX);
        assert_eq!(u64_field(row, "best_final_cycles"), best, "strategy {name}");
    }
}

#[test]
fn bench_explore_contention_frontiers_replay_from_the_library() {
    let json = load("BENCH_explore_contention.json");
    assert_eq!(
        str_field(&json, "schema"),
        "amdrel-explore-contention-report/v1"
    );
    let (workload, program, analysis) = ofdm_setup();
    assert_eq!(str_field(&json, "app"), workload.name);
    let platform = Platform::paper(1500, 2);
    let contention =
        amdrel::apps::runtime::contention_evaluator("ofdm", &platform).expect("evaluator builds");
    let wl = section(&json, "workload");
    assert_eq!(u64_field(wl, "seed"), contention.seed());
    assert_eq!(u64_field(wl, "njobs"), contention.njobs() as u64);
    assert_eq!(u64_field(wl, "load_percent"), contention.load_percent());
    assert_eq!(str_field(wl, "policy"), contention.policy_name());
    let space = ofdm::design_space();
    let config = ExploreConfig {
        seed: 42,
        eval_budget: 64,
        jobs: 0,
    };
    let objectives = ObjectiveSet::parse("cycles,area,energy,p95").unwrap();
    let shared_cache = MappingCache::new();
    let static_eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &analysis,
        &platform,
        EnergyModel::default(),
        &shared_cache,
    );
    let static_frontier = explore(&static_eval, &space, &Exhaustive, &config).unwrap();
    let contention_eval = Evaluator::new(
        &workload.name,
        &program.cdfg,
        &analysis,
        &platform,
        EnergyModel::default(),
        &shared_cache,
    )
    .with_objectives(objectives)
    .with_runtime(&contention);
    let contention_frontier = explore(&contention_eval, &space, &Exhaustive, &config).unwrap();
    let effort = section(&json, "effort");
    assert_eq!(
        u64_field(effort, "engine_runs"),
        contention_frontier.stats.engine_runs
    );
    assert_eq!(
        u64_field(effort, "sim_runs"),
        contention_frontier.stats.sim_runs
    );
    for (key, frontier) in [
        ("static_frontier", &static_frontier.frontier),
        ("contention_frontier", &contention_frontier.frontier),
    ] {
        let rows = objects_in(section(&json, key));
        assert_eq!(rows.len(), frontier.len(), "{key} size drifted");
        for (row, p) in rows.iter().zip(frontier) {
            assert_eq!(u64_field(row, "area"), p.area, "{key}");
            assert_eq!(str_field(row, "datapath"), p.datapath, "{key}");
            assert_eq!(
                u64_field(row, "kernels_moved"),
                p.kernels_moved as u64,
                "{key}"
            );
            assert_eq!(u64_field(row, "final_cycles"), p.cycles, "{key}");
            assert_eq!(u64_field(row, "energy"), p.energy_total(), "{key}");
            if let Some(c) = &p.contention {
                assert_eq!(u64_field(row, "p95_latency"), c.p95_latency, "{key}");
                assert_eq!(u64_field(row, "cycles_per_job"), c.cycles_per_job, "{key}");
            }
        }
    }
}
