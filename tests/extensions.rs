//! Integration tests for the paper-extension features: frame pipelining,
//! energy-constrained partitioning, and the third (Sobel) case study
//! flowing through the full methodology.

use amdrel::apps::sobel;
use amdrel::prelude::*;
use amdrel_core::{partition_for_energy, pipeline_report, EnergyModel, Stage};

fn ofdm_partitioned() -> amdrel_core::PartitionResult {
    let w = ofdm::workload(2004);
    let (program, execution) = w.compile_and_profile().expect("runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs")
}

#[test]
fn pipelining_the_partitioned_ofdm_increases_throughput() {
    let result = ofdm_partitioned();
    let report = pipeline_report(&result.breakdown, 100);
    assert!(report.speedup() > 1.0);
    assert!(report.pipelined_cycles < report.sequential_cycles);
    assert!(report.interval >= result.breakdown.t_fpga);
    assert!(report.interval >= result.breakdown.t_coarse + result.breakdown.t_comm);
    // The bottleneck stage runs at full utilisation.
    match report.bottleneck {
        Stage::FineGrain => assert!((report.fpga_utilization - 1.0).abs() < 1e-9),
        Stage::CoarseGrain => assert!((report.cgc_utilization - 1.0).abs() < 1e-9),
    }
}

#[test]
fn energy_partitioning_of_ofdm_beats_all_fpga() {
    let w = ofdm::workload(2004);
    let (program, execution) = w.compile_and_profile().expect("runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let platform = Platform::paper(1500, 3);
    let model = EnergyModel::default();
    let floor = partition_for_energy(&program.cdfg, &analysis, &platform, &model, 0)
        .expect("energy engine runs");
    assert!(floor.energy.total() < floor.initial.total());
    assert!(floor.reduction_percent() > 50.0);
    // Energy trace decreases monotonically (moves that don't pay are
    // skipped by construction).
    let mut last = floor.initial.total();
    for m in &floor.moves {
        assert!(m.energy.total() < last);
        last = m.energy.total();
    }
}

#[test]
fn timing_and_energy_engines_can_disagree() {
    // The two objectives need not pick identical kernel sets: energy
    // weighs reconfiguration escape, timing weighs cycle counts. Verify
    // both produce valid (possibly different) assignments on OFDM.
    let w = ofdm::workload(2004);
    let (program, execution) = w.compile_and_profile().expect("runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    let platform = Platform::paper(1500, 3);
    let timing = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    let energy = partition_for_energy(
        &program.cdfg,
        &analysis,
        &platform,
        &EnergyModel::default(),
        0,
    )
    .expect("energy engine runs");
    assert_eq!(timing.assignment.len(), energy.assignment.len());
    // Both must have moved the top kernel (it dominates both objectives).
    let top = analysis.kernels()[0];
    assert_eq!(timing.assignment[top.index()], Assignment::CoarseGrain);
    assert_eq!(energy.assignment[top.index()], Assignment::CoarseGrain);
}

#[test]
fn sobel_flows_through_the_complete_methodology() {
    let w = sobel::workload(48, 11);
    let (program, execution) = w.compile_and_profile().expect("runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    // End-to-end with a constraint at half the all-FPGA time.
    let platform = Platform::paper(1500, 2);
    let initial = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(u64::MAX)
        .expect("engine runs")
        .initial_cycles;
    let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(initial / 2)
        .expect("engine runs");
    assert!(r.met, "halving Sobel's runtime must be achievable");
    assert!(!r.moves.is_empty());
    // And the pipelined throughput exceeds sequential further.
    let p = pipeline_report(&r.breakdown, 50);
    assert!(p.speedup() >= 1.0);
}
