//! Cross-crate integration: the full Figure 2 flow on the OFDM
//! transmitter, checked against the paper's Table 2 shape.

use amdrel::prelude::*;
use amdrel_coarsegrain::CgcDatapath;

fn prepared() -> (amdrel_minic::CompiledProgram, AnalysisReport) {
    let w = ofdm::workload(2004);
    let (program, execution) = w.compile_and_profile().expect("OFDM compiles and runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    (program, analysis)
}

#[test]
fn all_four_paper_configs_meet_the_constraint() {
    let (program, analysis) = prepared();
    for area in [1500u64, 5000] {
        for cgcs in [2usize, 3] {
            let platform = Platform::paper(area, cgcs);
            let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
                .run(paper::OFDM_CONSTRAINT)
                .expect("engine runs");
            assert!(
                r.met,
                "A={area}, {cgcs} CGCs must meet 60000 cycles (got {})",
                r.final_cycles()
            );
            assert!(!r.met_without_partitioning, "all-FPGA must violate 60000");
        }
    }
}

#[test]
fn initial_cycles_shrink_with_fpga_area() {
    let (program, analysis) = prepared();
    let small = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 2))
        .run(u64::MAX)
        .expect("engine runs");
    let large = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(5000, 2))
        .run(u64::MAX)
        .expect("engine runs");
    assert!(
        large.initial_cycles < small.initial_cycles,
        "paper: larger FPGA exploits parallelism better ({} !< {})",
        large.initial_cycles,
        small.initial_cycles
    );
    // The paper's ratio is 2.12; ours must at least be clearly > 1.3.
    let ratio = small.initial_cycles as f64 / large.initial_cycles as f64;
    assert!(ratio > 1.3, "area sensitivity too weak: ratio {ratio:.2}");
}

#[test]
fn reduction_decreases_with_fpga_area() {
    // "as the FPGA area grows, the reduction of clock cycles is smaller".
    let (program, analysis) = prepared();
    let r1500 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    let r5000 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(5000, 3))
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    assert!(r1500.reduction_percent() > r5000.reduction_percent());
}

#[test]
fn reduction_lands_in_paper_bands() {
    let (program, analysis) = prepared();
    // Paper: 78.3/81.8% at A=1500, 54.1/62.5% at A=5000. Allow generous
    // bands: the substrate characterisation is ours, the shape is theirs.
    let r1500 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    let red = r1500.reduction_percent();
    assert!(
        (65.0..=92.0).contains(&red),
        "A=1500 reduction {red:.1}% outside the paper's regime"
    );
    let r5000 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(5000, 3))
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    let red = r5000.reduction_percent();
    assert!(
        (40.0..=75.0).contains(&red),
        "A=5000 reduction {red:.1}% outside the paper's regime"
    );
}

#[test]
fn first_move_is_the_heaviest_kernel_and_trace_is_monotone() {
    let (program, analysis) = prepared();
    let platform = Platform::paper(1500, 3);
    let r = PartitioningEngine::new(&program.cdfg, &analysis, &platform)
        .run(1) // impossible constraint: full trace
        .expect("engine runs");
    assert_eq!(r.moves[0].kernel, analysis.kernels()[0]);
    // eq. (2) identity at every step.
    for m in &r.moves {
        assert_eq!(
            m.breakdown.t_total(),
            m.breakdown.t_fpga + m.breakdown.t_coarse + m.breakdown.t_comm
        );
    }
    // Moving the heaviest kernels first: the first move produces the
    // single largest drop in the whole trace.
    let drops: Vec<i128> = std::iter::once(r.initial_cycles as i128)
        .chain(r.moves.iter().map(|m| m.breakdown.t_total() as i128))
        .collect::<Vec<_>>()
        .windows(2)
        .map(|w| w[0] - w[1])
        .collect();
    let first = drops[0];
    assert!(
        drops.iter().all(|&d| d <= first),
        "first move must be the biggest win"
    );
}

#[test]
fn three_cgcs_never_slower_than_two() {
    let (program, analysis) = prepared();
    let r2 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 2))
        .run(1)
        .expect("engine runs");
    let r3 = PartitioningEngine::new(&program.cdfg, &analysis, &Platform::paper(1500, 3))
        .run(1)
        .expect("engine runs");
    assert!(r3.breakdown.t_coarse_cgc <= r2.breakdown.t_coarse_cgc);
}

#[test]
fn grid_and_engine_agree() {
    let (program, analysis) = prepared();
    let base = Platform::paper(1500, 2);
    let grid = run_grid(
        "ofdm",
        &program.cdfg,
        &analysis,
        &base,
        &[1500, 5000],
        &[CgcDatapath::two_2x2(), CgcDatapath::three_2x2()],
        paper::OFDM_CONSTRAINT,
    )
    .expect("grid runs");
    assert_eq!(grid.cells.len(), 4);
    let direct = PartitioningEngine::new(&program.cdfg, &analysis, &base)
        .run(paper::OFDM_CONSTRAINT)
        .expect("engine runs");
    assert_eq!(grid.cells[0].result, direct);
    let table = format_paper_table(&grid);
    assert!(table.contains("Initial cycles"));
    assert!(table.contains("% cycles reduction"));
}
