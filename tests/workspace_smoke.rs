//! Workspace wiring smoke test: the facade's front-page example must keep
//! working end-to-end (compile → profile → analyse → partition), pulling
//! every crate of the workspace in through the `amdrel` facade.

use amdrel::core::{run_flow, Platform};
use amdrel::prelude::*;

/// The 64-element kernel from `src/lib.rs`'s crate-level doc example.
const DOC_KERNEL: &str = r#"
    int x[64];
    int y[64];
    int main() {
        for (int i = 0; i < 64; i++) {
            y[i] = x[i] * x[i] * 3 + 5;
        }
        return y[63];
    }
"#;

#[test]
fn doc_example_flow_completes_and_never_increases_cycles() {
    let platform = Platform::paper(1500, 2);
    let outcome = run_flow(DOC_KERNEL, &[], &platform, 2_000).expect("doc example flow runs");
    assert!(
        outcome.result.final_cycles() <= outcome.result.initial_cycles,
        "partitioning must never make the application slower: {} -> {}",
        outcome.result.initial_cycles,
        outcome.result.final_cycles(),
    );
}

#[test]
fn doc_example_flow_is_deterministic() {
    let platform = Platform::paper(1500, 2);
    let a = run_flow(DOC_KERNEL, &[], &platform, 2_000).expect("first run");
    let b = run_flow(DOC_KERNEL, &[], &platform, 2_000).expect("second run");
    assert_eq!(a.result.initial_cycles, b.result.initial_cycles);
    assert_eq!(a.result.final_cycles(), b.result.final_cycles());
    assert_eq!(a.result.moves.len(), b.result.moves.len());
}

#[test]
fn prelude_reaches_every_workspace_crate() {
    // One symbol per crate, through the facade's prelude: a compile error
    // here means the workspace dependency DAG lost a member.
    let _weights: WeightTable = WeightTable::paper(); // amdrel-profiler
    let _device = FpgaDevice::new(1500); // amdrel-finegrain
    let _datapath = CgcDatapath::two_2x2(); // amdrel-coarsegrain
    let _platform = Platform::paper(1500, 2); // amdrel-core
    let program = compile(DOC_KERNEL, "main").expect("minic compiles"); // amdrel-minic
    assert!(!program.cdfg.is_empty()); // amdrel-cdfg type in use
    let _workload = ofdm::workload(1); // amdrel-apps
}
