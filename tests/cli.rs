//! End-to-end tests of the `amdrel` CLI binary.

use std::io::Write as _;
use std::process::Command;

fn write_source(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("amdrel-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(body.as_bytes()).expect("write");
    path
}

fn amdrel(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_amdrel"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const FIR: &str = r#"
    int samples[40];
    int taps[4];
    int out[36];
    int main() {
        for (int i = 0; i < 36; i++) {
            int acc = 0;
            for (int t = 0; t < 4; t++) {
                acc += samples[i + t] * taps[t];
            }
            out[i] = acc >> 2;
        }
        return out[0];
    }
"#;

#[test]
fn analyze_prints_kernel_table() {
    let src = write_source("fir_analyze.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "analyze",
        src.to_str().unwrap(),
        "--input",
        "taps=1,2,2,1",
        "--top",
        "4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("basic blocks"));
    assert!(stdout.contains("total weight"));
}

#[test]
fn partition_reports_moves_and_verdict() {
    let src = write_source("fir_partition.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "partition",
        src.to_str().unwrap(),
        "--constraint",
        "4000",
        "--area",
        "1500",
        "--cgcs",
        "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("initial (all-FPGA):"), "{stdout}");
    assert!(stdout.contains("final:"), "{stdout}");
    assert!(stdout.contains("constraint"), "{stdout}");
}

#[test]
fn sweep_prints_paper_style_table() {
    let src = write_source("fir_sweep.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "sweep",
        src.to_str().unwrap(),
        "--constraint",
        "4000",
        "--areas",
        "1500,5000",
        "--cgc-list",
        "2,3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Initial cycles"));
    assert!(stdout.contains("% cycles reduction"));
    assert!(stdout.contains("A_FPGA=5000"));
}

#[test]
fn dot_emits_graphviz() {
    let src = write_source("fir_dot.c", FIR);
    let (ok, stdout, _) = amdrel(&["dot", src.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    let (ok, stdout, _) = amdrel(&["dot", src.to_str().unwrap(), "--block", "0"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = amdrel(&["partition", "/nonexistent.c", "--constraint", "10"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));

    let src = write_source("fir_err.c", FIR);
    let (ok, _, stderr) = amdrel(&["partition", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("--constraint"));

    let (ok, _, stderr) = amdrel(&["frobnicate", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = amdrel(&["analyze", src.to_str().unwrap(), "--input", "oops"]);
    assert!(!ok);
    assert!(stderr.contains("name=v"));
}

#[test]
fn help_lists_subcommands() {
    let (ok, stdout, _) = amdrel(&["--help"]);
    assert!(ok);
    for cmd in ["analyze", "partition", "sweep", "dot"] {
        assert!(stdout.contains(cmd));
    }
}

#[test]
fn bad_source_is_reported_with_position() {
    let src = write_source("broken.c", "int main() { return q; }");
    let (ok, _, stderr) = amdrel(&["analyze", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("undeclared variable 'q'"), "{stderr}");
}
