//! End-to-end tests of the `amdrel` CLI binary.

use std::io::Write as _;
use std::process::Command;

fn write_source(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("amdrel-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(body.as_bytes()).expect("write");
    path
}

fn amdrel(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_amdrel"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const FIR: &str = r#"
    int samples[40];
    int taps[4];
    int out[36];
    int main() {
        for (int i = 0; i < 36; i++) {
            int acc = 0;
            for (int t = 0; t < 4; t++) {
                acc += samples[i + t] * taps[t];
            }
            out[i] = acc >> 2;
        }
        return out[0];
    }
"#;

#[test]
fn analyze_prints_kernel_table() {
    let src = write_source("fir_analyze.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "analyze",
        src.to_str().unwrap(),
        "--input",
        "taps=1,2,2,1",
        "--top",
        "4",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("basic blocks"));
    assert!(stdout.contains("total weight"));
}

#[test]
fn partition_reports_moves_and_verdict() {
    let src = write_source("fir_partition.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "partition",
        src.to_str().unwrap(),
        "--constraint",
        "4000",
        "--area",
        "1500",
        "--cgcs",
        "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("initial (all-FPGA):"), "{stdout}");
    assert!(stdout.contains("final:"), "{stdout}");
    assert!(stdout.contains("constraint"), "{stdout}");
}

#[test]
fn sweep_prints_paper_style_table() {
    let src = write_source("fir_sweep.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "sweep",
        src.to_str().unwrap(),
        "--constraint",
        "4000",
        "--areas",
        "1500,5000",
        "--cgc-list",
        "2,3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Initial cycles"));
    assert!(stdout.contains("% cycles reduction"));
    assert!(stdout.contains("A_FPGA=5000"));
}

#[test]
fn sweep_json_is_machine_readable() {
    let src = write_source("fir_sweep_json.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "sweep",
        src.to_str().unwrap(),
        "--constraint",
        "4000",
        "--areas",
        "1500,5000",
        "--cgc-list",
        "2,3",
        "--jobs",
        "2",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("\"schema\": \"amdrel-sweep/v2\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"cells\""));
    assert!(stdout.contains("\"cache\""));
    assert!(stdout.contains("\"entries\""), "{stdout}");
    assert!(stdout.contains("\"metrics\""), "{stdout}");
    assert_eq!(stdout.matches("\"area\":").count(), 4, "4 grid cells");
    assert!(!stdout.contains("Initial cycles"), "no table in JSON mode");
}

#[test]
fn explore_prints_frontier_table_and_json() {
    let src = write_source("fir_explore.c", FIR);
    let (ok, stdout, stderr) = amdrel(&[
        "explore",
        src.to_str().unwrap(),
        "--strategy",
        "sa",
        "--seed",
        "42",
        "--budget",
        "24",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("strategy sa (seed 42, budget 24, objectives cycles,area,energy)"),
        "{stdout}"
    );
    assert!(stdout.contains("Pareto frontier"), "{stdout}");
    assert!(stdout.contains("speedup"), "{stdout}");

    let (ok, json, stderr) = amdrel(&[
        "explore",
        src.to_str().unwrap(),
        "--strategy",
        "exhaustive",
        "--jobs",
        "2",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(json.contains("\"schema\": \"amdrel-explore/v3\""), "{json}");
    assert!(json.contains("\"metrics\""), "{json}");
    assert!(json.contains("\"archive.inserts\""), "{json}");
    assert!(
        json.contains("\"objectives\": [\"cycles\", \"area\", \"energy\"]"),
        "{json}"
    );
    assert!(json.contains("\"frontier\""), "{json}");
    assert!(
        json.contains("\"engine_runs\": 4"),
        "one run per cell: {json}"
    );
    assert!(
        !json.contains("\"contention\""),
        "static objectives carry no contention block: {json}"
    );
}

#[test]
fn explore_rejects_unknown_objectives() {
    let src = write_source("fir_objectives.c", FIR);
    let (ok, _, stderr) = amdrel(&[
        "explore",
        src.to_str().unwrap(),
        "--objectives",
        "cycles,latency",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown objective 'latency'"), "{stderr}");
    assert!(stderr.contains("usage: amdrel"), "{stderr}");
}

#[test]
fn explore_is_seed_deterministic() {
    let src = write_source("fir_explore_det.c", FIR);
    let path = src.to_str().unwrap();

    // Same seed, repeated run: byte-identical annealing output.
    let sa = [
        "explore",
        path,
        "--strategy",
        "sa",
        "--seed",
        "7",
        "--budget",
        "20",
    ];
    let (ok1, out1, _) = amdrel(&sa);
    let (ok2, out2, _) = amdrel(&sa);
    assert!(ok1 && ok2);
    assert_eq!(out1, out2, "same seed must reproduce the frontier");

    // Exhaustive is the strategy that consumes --jobs (parallel cell
    // evaluation): its output must be byte-identical at every setting.
    let exhaustive =
        |jobs: &'static str| amdrel(&["explore", path, "--strategy", "exhaustive", "--jobs", jobs]);
    let (ok1, out1, _) = exhaustive("1");
    let (ok2, out2, _) = exhaustive("4");
    assert!(ok1 && ok2);
    assert_eq!(out1, out2, "frontier must not depend on --jobs");
}

#[test]
fn malformed_flags_exit_nonzero_with_usage() {
    let src = write_source("fir_badflag.c", FIR);
    let (ok, _, stderr) = amdrel(&["sweep", src.to_str().unwrap(), "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag '--bogus'"), "{stderr}");
    assert!(stderr.contains("usage: amdrel"), "{stderr}");

    let (ok, _, stderr) = amdrel(&["explore", src.to_str().unwrap(), "--strategy", "psychic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown strategy 'psychic'"), "{stderr}");
    assert!(stderr.contains("usage: amdrel"), "{stderr}");

    let (ok, _, stderr) = amdrel(&["explore", src.to_str().unwrap(), "--budget", "a-lot"]);
    assert!(!ok);
    assert!(stderr.contains("--budget"), "{stderr}");
    assert!(stderr.contains("usage: amdrel"), "{stderr}");
}

#[test]
fn simulate_runs_the_builtin_mix() {
    let (ok, stdout, stderr) = amdrel(&[
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--policy", "sjf",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("policy sjf"), "{stdout}");
    assert!(stdout.contains("p95 latency"), "{stdout}");
    assert!(stdout.contains("ofdm"), "{stdout}");
    assert!(stdout.contains("reconfig"), "{stdout}");
}

#[test]
fn simulate_json_is_bit_deterministic() {
    let args = [
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--json",
    ];
    let (ok1, out1, stderr) = amdrel(&args);
    assert!(ok1, "stderr: {stderr}");
    assert!(
        out1.contains("\"schema\": \"amdrel-simulate/v4\""),
        "{out1}"
    );
    assert!(out1.contains("\"apps\""), "{out1}");
    assert!(out1.contains("\"queue\""), "{out1}");
    assert!(out1.contains("\"metrics\""), "{out1}");
    assert!(out1.contains("\"sim.makespan\""), "{out1}");
    assert!(out1.contains("\"latency_source\": \"exact\""), "{out1}");
    assert!(!out1.contains("p95 latency "), "no table in JSON mode");
    let (ok2, out2, _) = amdrel(&args);
    assert!(ok2);
    assert_eq!(out1, out2, "same seed must replay bit-for-bit");

    // Admission and policy knobs change the outcome but stay deterministic.
    let bounded = [
        "simulate",
        "--app",
        "ofdm",
        "--seed",
        "42",
        "--njobs",
        "24",
        "--queue-bound",
        "1",
        "--json",
    ];
    let (ok3, out3, _) = amdrel(&bounded);
    let (ok4, out4, _) = amdrel(&bounded);
    assert!(ok3 && ok4);
    assert_eq!(out3, out4);
}

#[test]
fn simulate_queue_bound_zero_still_means_unbounded() {
    // `--queue-bound 0` predates the Option<NonZeroUsize> config field;
    // it must keep its historical meaning (no admission control).
    let args = |bound: &'static str| {
        [
            "simulate",
            "--app",
            "ofdm",
            "--seed",
            "42",
            "--njobs",
            "24",
            "--queue-bound",
            bound,
            "--json",
        ]
    };
    let (ok_zero, zero, stderr) = amdrel(&args("0"));
    assert!(ok_zero, "stderr: {stderr}");
    let (ok_default, default, _) = amdrel(&[
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--json",
    ]);
    assert!(ok_default);
    assert_eq!(zero, default, "--queue-bound 0 must equal the default");
    assert!(zero.contains("\"queue_bound\": 0"), "{zero}");
    assert!(zero.contains("\"rejected\": 0"), "{zero}");

    let (ok_table, table, _) = amdrel(&[
        "simulate",
        "--app",
        "ofdm",
        "--njobs",
        "8",
        "--queue-bound",
        "0",
    ]);
    assert!(ok_table);
    assert!(table.contains("queue bound unbounded"), "{table}");
}

#[test]
fn simulate_sketch_modes_agree_on_percentile_buckets() {
    let args = |mode: &'static str| {
        [
            "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--sketch", mode,
            "--json",
        ]
    };
    let (ok_exact, exact, stderr) = amdrel(&args("exact"));
    assert!(ok_exact, "stderr: {stderr}");
    assert!(exact.contains("\"latency_source\": \"exact\""), "{exact}");
    let (ok_sketched, sketched, _) = amdrel(&args("sketched"));
    assert!(ok_sketched);
    assert!(
        sketched.contains("\"latency_source\": \"sketched\""),
        "{sketched}"
    );
    // Sketched runs stay bit-deterministic too.
    let (ok_again, sketched_again, _) = amdrel(&args("sketched"));
    assert!(ok_again);
    assert_eq!(sketched, sketched_again);

    let (ok_bad, _, stderr) = amdrel(&args("psychic"));
    assert!(!ok_bad);
    assert!(stderr.contains("unknown sketch mode 'psychic'"), "{stderr}");
}

#[test]
fn simulate_rejects_bad_app_and_policy() {
    let (ok, _, stderr) = amdrel(&["simulate", "--app", "doom"]);
    assert!(!ok);
    assert!(stderr.contains("unknown app 'doom'"), "{stderr}");

    let (ok, _, stderr) = amdrel(&["simulate", "--policy", "psychic", "--app", "ofdm"]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy 'psychic'"), "{stderr}");

    let (ok, _, stderr) = amdrel(&["simulate", "stray.c"]);
    assert!(!ok);
    assert!(stderr.contains("unexpected arguments"), "{stderr}");

    let (ok, _, stderr) = amdrel(&[
        "simulate",
        "--app",
        "ofdm",
        "--load",
        "150",
        "--arrival",
        "9000",
    ]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let (ok, _, stderr) = amdrel(&["simulate", "--app", "ofdm", "--arrival", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--arrival must be a positive"), "{stderr}");
}

#[test]
fn simulate_fault_flags_are_documented_and_validated() {
    // `--help` documents every fault flag on both fault-aware
    // subcommands.
    for cmd in ["simulate", "explore"] {
        let (ok, stdout, stderr) = amdrel(&[cmd, "--help"]);
        assert!(ok, "{cmd} --help (stderr: {stderr})");
        for flag in [
            "--fault-rate",
            "--fault-seed",
            "--deadline",
            "--max-retries",
            "--degrade",
        ] {
            assert!(
                stdout.contains(flag),
                "{cmd} --help must list {flag}: {stdout}"
            );
        }
    }
    let (_, stdout, _) = amdrel(&["explore", "--help"]);
    assert!(stdout.contains("p95_under_faults"), "{stdout}");
    assert!(stdout.contains("degraded_share"), "{stdout}");

    // Malformed fault flags exit nonzero with the usage on stderr.
    for bad in [
        &["simulate", "--fault-rate", "-1"][..],
        &["simulate", "--fault-rate", "1001"],
        &["simulate", "--fault-rate", "many"],
        &["simulate", "--max-retries", "garbage"],
        &["simulate", "--deadline", "0"],
        &["simulate", "--fault-seed", "not-a-number"],
    ] {
        let (ok, _, stderr) = amdrel(bad);
        assert!(!ok, "{bad:?} must fail");
        assert!(stderr.contains("error:"), "{bad:?}: {stderr}");
        assert!(stderr.contains("usage: amdrel"), "{bad:?}: {stderr}");
        assert!(stderr.contains(bad[1]), "{bad:?} names the flag: {stderr}");
    }
}

#[test]
fn region_flags_are_documented_with_their_interactions() {
    // `--help` documents the region flags on both region-aware
    // subcommands, including which flags are mutually exclusive.
    for cmd in ["simulate", "explore"] {
        let (ok, stdout, stderr) = amdrel(&[cmd, "--help"]);
        assert!(ok, "{cmd} --help (stderr: {stderr})");
        for flag in [
            "--reconfig streamed|region|free",
            "--regions N | --region-shape RxC",
        ] {
            assert!(
                stdout.contains(flag),
                "{cmd} --help must list {flag}: {stdout}"
            );
        }
        assert!(
            stdout.contains("imply --reconfig region"),
            "{cmd} --help must document the implied mode: {stdout}"
        );
    }
    // simulate additionally spells out the `--no-config-cache` and
    // `--prefetch` interactions.
    let (_, stdout, _) = amdrel(&["simulate", "--help"]);
    assert!(
        stdout
            .contains("--load/--arrival and --regions/--region-shape are mutually exclusive pairs"),
        "{stdout}"
    );
    assert!(
        stdout.contains("--no-config-cache composes with --reconfig region"),
        "{stdout}"
    );
    assert!(
        stdout.contains("both it and --prefetch are no-ops under --reconfig free"),
        "{stdout}"
    );
    // explore lists the floorplan objectives.
    let (_, stdout, _) = amdrel(&["explore", "--help"]);
    assert!(stdout.contains("fragmentation"), "{stdout}");
    assert!(stdout.contains("worst_region_load"), "{stdout}");
}

#[test]
fn region_flag_conflicts_exit_nonzero() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["simulate", "--regions", "2", "--region-shape", "2x2"],
            "--regions and --region-shape are mutually exclusive",
        ),
        (
            &["simulate", "--regions", "4", "--reconfig", "streamed"],
            "imply --reconfig region",
        ),
        (
            &["simulate", "--region-shape", "2x2", "--reconfig", "free"],
            "imply --reconfig region",
        ),
        (
            &["simulate", "--reconfig", "bogus"],
            "unknown reconfig model",
        ),
        (&["simulate", "--regions", "0"], "positive region count"),
        (&["simulate", "--region-shape", "4"], "wants RxC"),
        (
            &["simulate", "--region-shape", "0x2"],
            "positive dimensions",
        ),
    ];
    for (args, needle) in cases {
        let (ok, _, stderr) = amdrel(args);
        assert!(!ok, "{args:?} must fail");
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn simulate_region_mode_is_deterministic_and_cuts_reconfig_stall() {
    let streamed = ["simulate", "--seed", "42", "--njobs", "40", "--json"];
    let region = [
        "simulate",
        "--seed",
        "42",
        "--njobs",
        "40",
        "--regions",
        "4",
        "--json",
    ];
    let (ok, s, stderr) = amdrel(&streamed);
    assert!(ok, "stderr: {stderr}");
    let (ok1, r1, _) = amdrel(&region);
    let (ok2, r2, _) = amdrel(&region);
    assert!(ok1 && ok2);
    assert_eq!(r1, r2, "region mode must replay bit-for-bit");
    assert_ne!(s, r1, "region pricing must actually change the outcome");
    let stall = |json: &str| {
        let key = "\"reconfig_stall_cycles\": ";
        let at = json.find(key).expect("reconfig_stall_cycles in the report");
        json[at + key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .expect("numeric stall cycles")
    };
    assert!(
        stall(&r1) < stall(&s),
        "partial reconfiguration must stall less: region {} vs streamed {}",
        stall(&r1),
        stall(&s)
    );

    // A single full-fabric region is the degenerate plan: byte-identical
    // to the default streamed pool.
    let (ok3, one, _) = amdrel(&[
        "simulate",
        "--seed",
        "42",
        "--njobs",
        "40",
        "--regions",
        "1",
        "--json",
    ]);
    assert!(ok3);
    assert_eq!(one, s, "--regions 1 must degenerate to the scalar pool");

    // The human-readable header names the grid.
    let (ok4, table, _) = amdrel(&[
        "simulate",
        "--seed",
        "42",
        "--njobs",
        "8",
        "--region-shape",
        "2x2",
    ]);
    assert!(ok4);
    assert!(
        table.contains("reconfig: region mode, 2x2 grid (4 regions)"),
        "{table}"
    );
}

#[test]
fn simulate_zero_fault_rate_is_byte_identical_to_default() {
    let base = [
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--json",
    ];
    let (ok_default, default, stderr) = amdrel(&base);
    assert!(ok_default, "stderr: {stderr}");
    let (ok_zero, zero, _) = amdrel(&[
        "simulate",
        "--app",
        "ofdm",
        "--seed",
        "42",
        "--njobs",
        "24",
        "--fault-rate",
        "0",
        "--max-retries",
        "5",
        "--degrade",
        "--json",
    ]);
    assert!(ok_zero);
    // Recovery metadata differs, but every simulated quantity must not.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| {
                !l.contains("\"recovery\"")
                    && !l.contains("\"max_retries\"")
                    && !l.contains("\"degrade\"")
                    && !l.contains("\"backoff_")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&default),
        strip(&zero),
        "--fault-rate 0 must be the fault-free simulator"
    );
    assert!(default.contains("\"injected\": 0"), "{default}");
}

#[test]
fn simulate_faulted_runs_are_bit_deterministic() {
    let args = [
        "simulate",
        "--app",
        "ofdm",
        "--seed",
        "42",
        "--njobs",
        "24",
        "--fault-rate",
        "80",
        "--fault-seed",
        "9",
        "--degrade",
        "--json",
    ];
    let (ok1, out1, stderr) = amdrel(&args);
    assert!(ok1, "stderr: {stderr}");
    let (ok2, out2, _) = amdrel(&args);
    assert!(ok2);
    assert_eq!(out1, out2, "faulted runs must replay bit-for-bit");
    assert!(
        !out1.contains("\"injected\": 0"),
        "faults were live: {out1}"
    );
    assert!(out1.contains("\"availability\""), "{out1}");

    // The fault table lines only appear when faults are live.
    let (ok_table, table, _) = amdrel(&[
        "simulate",
        "--app",
        "ofdm",
        "--njobs",
        "24",
        "--fault-rate",
        "80",
    ]);
    assert!(ok_table);
    assert!(table.contains("faults:"), "{table}");
    assert!(table.contains("availability"), "{table}");
}

#[test]
fn per_subcommand_help_exits_zero_with_usage() {
    for cmd in [
        "analyze",
        "partition",
        "sweep",
        "explore",
        "simulate",
        "trace",
        "dot",
    ] {
        let (ok, stdout, stderr) = amdrel(&[cmd, "--help"]);
        assert!(ok, "{cmd} --help must exit 0 (stderr: {stderr})");
        assert!(
            stdout.contains(&format!("usage: amdrel {cmd}")),
            "{cmd}: {stdout}"
        );
    }
}

#[test]
fn unknown_subcommand_lists_the_real_ones() {
    let (ok, _, stderr) = amdrel(&["frobnicate", "x.c"]);
    assert!(!ok, "unknown subcommands exit nonzero");
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    for cmd in [
        "analyze",
        "partition",
        "sweep",
        "explore",
        "simulate",
        "trace",
        "dot",
    ] {
        assert!(stderr.contains(cmd), "{stderr}");
    }
    assert!(stderr.contains("usage: amdrel"), "{stderr}");
}

#[test]
fn dot_emits_graphviz() {
    let src = write_source("fir_dot.c", FIR);
    let (ok, stdout, _) = amdrel(&["dot", src.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    let (ok, stdout, _) = amdrel(&["dot", src.to_str().unwrap(), "--block", "0"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = amdrel(&["partition", "/nonexistent.c", "--constraint", "10"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));

    let src = write_source("fir_err.c", FIR);
    let (ok, _, stderr) = amdrel(&["partition", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("--constraint"));

    let (ok, _, stderr) = amdrel(&["frobnicate", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (ok, _, stderr) = amdrel(&["analyze", src.to_str().unwrap(), "--input", "oops"]);
    assert!(!ok);
    assert!(stderr.contains("name=v"));
}

#[test]
fn help_lists_subcommands() {
    let (ok, stdout, _) = amdrel(&["--help"]);
    assert!(ok);
    for cmd in [
        "analyze",
        "partition",
        "sweep",
        "explore",
        "simulate",
        "trace",
        "dot",
    ] {
        assert!(stdout.contains(cmd));
    }
}

#[test]
fn help_groups_flags_into_sections() {
    // The fault-aware subcommands organise their long flag lists into
    // named sections so `--help` stays scannable.
    for cmd in ["simulate", "explore"] {
        let (ok, stdout, stderr) = amdrel(&[cmd, "--help"]);
        assert!(ok, "{cmd} --help (stderr: {stderr})");
        for section in ["workload:", "faults:", "regions:", "observability:"] {
            assert!(
                stdout.contains(section),
                "{cmd} --help must have a {section} section: {stdout}"
            );
        }
    }
    let (_, stdout, _) = amdrel(&["explore", "--help"]);
    assert!(stdout.contains("search:"), "{stdout}");
}

#[test]
fn trace_subcommand_emits_deterministic_chrome_json() {
    let args = ["trace", "--app", "ofdm", "--seed", "42", "--njobs", "24"];
    let (ok1, out1, stderr) = amdrel(&args);
    assert!(ok1, "stderr: {stderr}");
    assert!(out1.contains("\"amdrel-trace/v1\""), "{out1}");
    assert!(out1.contains("\"traceEvents\""), "{out1}");
    assert!(out1.contains("\"ph\":\"X\""), "complete spans: {out1}");
    assert!(out1.contains("\"arrive\""), "{out1}");
    let (ok2, out2, _) = amdrel(&args);
    assert!(ok2);
    assert_eq!(out1, out2, "traces must replay bit-for-bit");
}

#[test]
fn trace_text_format_prints_timeline_and_gantt() {
    let (ok, stdout, stderr) = amdrel(&[
        "trace",
        "--app",
        "ofdm",
        "--njobs",
        "8",
        "--trace-format",
        "text",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("cycle"), "timeline header: {stdout}");
    assert!(stdout.contains("arrive"), "{stdout}");
    assert!(stdout.contains("resource gantt:"), "{stdout}");
    assert!(stdout.contains("fabric"), "{stdout}");

    let (ok, _, stderr) = amdrel(&["trace", "--trace-format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown trace format 'xml'"), "{stderr}");
}

#[test]
fn simulate_trace_flag_is_a_pure_observer() {
    let dir = std::env::temp_dir().join("amdrel-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("sim_observer.trace.json");
    let trace_path = trace_path.to_str().unwrap();
    let base = [
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--json",
    ];
    let (ok1, plain, stderr) = amdrel(&base);
    assert!(ok1, "stderr: {stderr}");
    let (ok2, traced, stderr) = amdrel(&[
        "simulate", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--json", "--trace",
        trace_path,
    ]);
    assert!(ok2, "stderr: {stderr}");
    assert_eq!(
        plain, traced,
        "attaching a trace sink must not change the report"
    );
    let trace = std::fs::read_to_string(trace_path).expect("trace file written");
    assert!(trace.contains("\"amdrel-trace/v1\""), "{trace}");
}

#[test]
fn traced_faulted_run_records_fault_and_retry_events() {
    let dir = std::env::temp_dir().join("amdrel-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("sim_faulted.trace.txt");
    let trace_path = trace_path.to_str().unwrap();
    let (ok, _, stderr) = amdrel(&[
        "simulate",
        "--seed",
        "42",
        "--njobs",
        "40",
        "--fault-rate",
        "80",
        "--degrade",
        "--trace",
        trace_path,
        "--trace-format",
        "text",
    ]);
    assert!(ok, "stderr: {stderr}");
    let trace = std::fs::read_to_string(trace_path).expect("trace file written");
    assert!(
        trace.contains("fault") || trace.contains("retry"),
        "a faulted run must surface recovery events in the trace: {trace}"
    );
}

#[test]
fn explore_trace_needs_a_runtime_objective() {
    let src = write_source("fir_trace_explore.c", FIR);
    let (ok, _, stderr) = amdrel(&[
        "explore",
        src.to_str().unwrap(),
        "--trace",
        "/tmp/unused.trace.json",
    ]);
    assert!(!ok);
    assert!(stderr.contains("runtime objective"), "{stderr}");

    // With a runtime objective the trace of the best frontier point is
    // written alongside the normal report.
    let dir = std::env::temp_dir().join("amdrel-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("explore_best.trace.json");
    let trace_path = trace_path.to_str().unwrap();
    let (ok, stdout, stderr) = amdrel(&[
        "explore",
        src.to_str().unwrap(),
        "--objectives",
        "cycles,p95",
        "--strategy",
        "random",
        "--budget",
        "6",
        "--njobs",
        "8",
        "--trace",
        trace_path,
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Pareto frontier"), "{stdout}");
    let trace = std::fs::read_to_string(trace_path).expect("trace file written");
    assert!(trace.contains("\"amdrel-trace/v1\""), "{trace}");
    assert!(trace.contains("\"arrive\""), "{trace}");
}

#[test]
fn profile_prints_phase_json_to_stderr_only() {
    let (ok, stdout, stderr) = amdrel(&[
        "simulate",
        "--app",
        "ofdm",
        "--njobs",
        "8",
        "--json",
        "--profile",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("\"amdrel-profile/v1\""), "{stderr}");
    assert!(stderr.contains("sim.run"), "{stderr}");
    assert!(
        !stdout.contains("amdrel-profile"),
        "wall-clock profile output must never contaminate stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"schema\": \"amdrel-simulate/v4\""),
        "{stdout}"
    );
}

#[test]
fn shards_flag_is_documented_in_the_workload_section() {
    let (ok, stdout, stderr) = amdrel(&["simulate", "--help"]);
    assert!(ok, "stderr: {stderr}");
    let workload = stdout
        .find("workload:")
        .expect("simulate --help has a workload section");
    let next_section = stdout.find("faults:").expect("faults section follows");
    assert!(
        stdout[workload..next_section].contains("--shards K"),
        "--shards belongs to the workload section: {stdout}"
    );
}

#[test]
fn bad_shard_counts_exit_nonzero_with_usage() {
    for bad in [
        &["simulate", "--app", "ofdm", "--shards", "0"][..],
        &["simulate", "--app", "ofdm", "--shards", "many"],
        &["trace", "--app", "ofdm", "--shards", "0"],
        &["trace", "--app", "ofdm", "--shards", "-3"],
    ] {
        let (ok, _, stderr) = amdrel(bad);
        assert!(!ok, "{bad:?} must fail");
        assert!(stderr.contains("error:"), "{bad:?}: {stderr}");
        assert!(stderr.contains("--shards"), "{bad:?}: {stderr}");
        assert!(stderr.contains("usage: amdrel"), "{bad:?}: {stderr}");
    }
}

#[test]
fn sharded_single_app_trace_is_byte_identical_to_unsharded() {
    // With one app every job lands on shard 0, so any shard count must
    // reproduce the unsharded chrome trace byte-for-byte — the empty
    // shards contribute nothing and the merge restamps nothing.
    let base = ["trace", "--app", "ofdm", "--seed", "42", "--njobs", "24"];
    let (ok, unsharded, stderr) = amdrel(&base);
    assert!(ok, "stderr: {stderr}");
    for shards in ["1", "2", "8"] {
        let (ok, sharded, stderr) = amdrel(&[
            "trace", "--app", "ofdm", "--seed", "42", "--njobs", "24", "--shards", shards,
        ]);
        assert!(ok, "--shards {shards} (stderr: {stderr})");
        assert_eq!(
            unsharded, sharded,
            "--shards {shards} must not perturb a single-app trace"
        );
    }
}

#[test]
fn sharded_simulate_report_is_bit_deterministic() {
    let args = [
        "simulate", "--seed", "42", "--njobs", "40", "--shards", "3", "--json",
    ];
    let (ok1, out1, stderr) = amdrel(&args);
    assert!(ok1, "stderr: {stderr}");
    let (ok2, out2, _) = amdrel(&args);
    assert!(ok2);
    assert_eq!(out1, out2, "sharded runs must replay bit-for-bit");
}

#[test]
fn bad_source_is_reported_with_position() {
    let src = write_source("broken.c", "int main() { return q; }");
    let (ok, _, stderr) = amdrel(&["analyze", src.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("undeclared variable 'q'"), "{stderr}");
}
