//! Integration tests of the mapping cache and the parallel grid executor
//! through the facade crate, the way library users reach them.

use amdrel::prelude::*;
use std::sync::Arc;

const FIR: &str = r#"
    int samples[72];
    int taps[8];
    int out[64];
    int main() {
        for (int i = 0; i < 64; i++) {
            int acc = 0;
            for (int t = 0; t < 8; t++) {
                acc += samples[i + t] * taps[t];
            }
            out[i] = acc >> 4;
        }
        return out[0];
    }
"#;

fn analyzed() -> (amdrel::minic::CompiledProgram, AnalysisReport) {
    let program = compile(FIR, "main").expect("compiles");
    let execution = Interpreter::new(&program.ir).run(&[]).expect("runs");
    let analysis = AnalysisReport::analyze(
        &program.cdfg,
        &execution.block_counts,
        &WeightTable::paper(),
    );
    (program, analysis)
}

#[test]
fn parallel_grid_matches_sequential_through_facade() {
    let (program, analysis) = analyzed();
    let base = Platform::paper(1500, 2);
    let datapaths = [CgcDatapath::two_2x2(), CgcDatapath::three_2x2()];
    let initial = PartitioningEngine::new(&program.cdfg, &analysis, &base)
        .run(u64::MAX)
        .expect("engine runs")
        .initial_cycles;
    let spec = GridSpec {
        app: "fir",
        cdfg: &program.cdfg,
        analysis: &analysis,
        base: &base,
        areas: &[1200, 1500, 5000],
        datapaths: &datapaths,
        constraint: initial / 2,
    };
    let sequential = run_grid(
        "fir",
        &program.cdfg,
        &analysis,
        &base,
        &[1200, 1500, 5000],
        &datapaths,
        initial / 2,
    )
    .expect("grid runs");
    let parallel = run_grid_parallel(&spec).expect("grid runs");
    assert_eq!(sequential, parallel);
    // And the paper-table rendering agrees, cell for cell.
    assert_eq!(
        format_paper_table(&sequential),
        format_paper_table(&parallel)
    );
}

#[test]
fn cache_shares_mappings_by_pointer() {
    let (program, _) = analyzed();
    let cache = MappingCache::new();
    let platform = Platform::paper(1500, 2);
    let f1 = cache
        .fine(&program.cdfg, &platform.fpga)
        .expect("fine maps");
    let f2 = cache
        .fine(&program.cdfg, &platform.fpga)
        .expect("fine maps");
    assert!(Arc::ptr_eq(&f1, &f2));
    let c1 = cache
        .coarse(&program.cdfg, &platform.datapath, &platform.scheduler)
        .expect("coarse maps");
    let c2 = cache
        .coarse(&program.cdfg, &platform.datapath, &platform.scheduler)
        .expect("coarse maps");
    assert!(Arc::ptr_eq(&c1, &c2));
    let stats = cache.stats();
    assert_eq!((stats.fine_misses, stats.fine_hits), (1, 1));
    assert_eq!((stats.coarse_misses, stats.coarse_hits), (1, 1));
}

#[test]
fn grid_maps_each_area_and_datapath_once() {
    let (program, analysis) = analyzed();
    let base = Platform::paper(1500, 2);
    let areas = [1200u64, 1500, 5000];
    let datapaths = [CgcDatapath::two_2x2(), CgcDatapath::three_2x2()];
    let cache = MappingCache::new();
    let spec = GridSpec {
        app: "fir",
        cdfg: &program.cdfg,
        analysis: &analysis,
        base: &base,
        areas: &areas,
        datapaths: &datapaths,
        constraint: 1, // tight: every cell maps both fabrics
    };
    run_grid_cached(&spec, &cache).expect("grid runs");
    run_grid_parallel_cached(&spec, &cache).expect("grid runs");
    let stats = cache.stats();
    assert_eq!(stats.fine_misses, areas.len() as u64);
    assert_eq!(stats.coarse_misses, datapaths.len() as u64);
    // 2 sweeps × 6 cells × 2 lookups, minus one lookup per miss.
    assert_eq!(stats.hits(), 2 * 6 * 2 - 5);
}

#[test]
fn run_flow_cached_reuses_mappings_across_constraints() {
    let cache = MappingCache::new();
    let platform = Platform::paper(1500, 2);
    let first = run_flow_cached(FIR, &[], &platform, 1, EngineConfig::default(), &cache)
        .expect("flow runs");
    let again = run_flow_cached(FIR, &[], &platform, 1, EngineConfig::default(), &cache)
        .expect("flow runs");
    assert_eq!(first.result, again.result);
    // Sweep constraints: still only one mapping per fabric.
    for divisor in [2u64, 4, 8] {
        let constraint = first.result.initial_cycles / divisor;
        run_flow_cached(
            FIR,
            &[],
            &platform,
            constraint,
            EngineConfig::default(),
            &cache,
        )
        .expect("flow runs");
    }
    let stats = cache.stats();
    assert_eq!(stats.fine_misses, 1);
    assert_eq!(stats.coarse_misses, 1);
    assert!(stats.hits() >= 5);
}
